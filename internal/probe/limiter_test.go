package probe

import (
	"net"
	"testing"
	"time"
)

// TestTokenBucketRefill: the bucket starts full, drains one token per
// take, refills at the configured rate, and never exceeds the burst.
func TestTokenBucketRefill(t *testing.T) {
	var b tokenBucket
	const (
		rate  = 10.0 // tokens/s
		burst = 5.0
	)
	t0 := time.Millisecond
	for i := 0; i < 5; i++ {
		if !b.take(t0, rate, burst, 0, 1) {
			t.Fatalf("take %d refused with a full bucket", i)
		}
	}
	if b.take(t0, rate, burst, 0, 1) {
		t.Fatal("take succeeded on an empty bucket with no time elapsed")
	}
	// 100ms at 10/s refills exactly one token.
	if !b.take(t0+100*time.Millisecond, rate, burst, 0, 1) {
		t.Fatal("refill after 100ms did not produce a token")
	}
	if b.take(t0+100*time.Millisecond, rate, burst, 0, 1) {
		t.Fatal("got two tokens from a one-token refill")
	}
	// A long idle period caps at the burst, not rate*dt.
	later := t0 + time.Hour
	for i := 0; i < 5; i++ {
		if !b.take(later, rate, burst, 0, 1) {
			t.Fatalf("take %d refused after a full refill", i)
		}
	}
	if b.take(later, rate, burst, 0, 1) {
		t.Fatal("burst cap not enforced after long idle")
	}
}

// TestTokenBucketFloor: a take with a floor cannot drain the reserve,
// while a floorless take on the same bucket can.
func TestTokenBucketFloor(t *testing.T) {
	var b tokenBucket
	const burst, floor = 4.0, 2.0
	t0 := time.Millisecond
	if !b.take(t0, 0, burst, floor, 1) || !b.take(t0, 0, burst, floor, 1) {
		t.Fatal("floored takes refused above the reserve")
	}
	if b.take(t0, 0, burst, floor, 1) {
		t.Fatal("floored take dipped into the reserve")
	}
	if !b.take(t0, 0, burst, 0, 1) || !b.take(t0, 0, burst, 0, 1) {
		t.Fatal("floorless take refused the reserve")
	}
	if b.take(t0, 0, burst, 0, 1) {
		t.Fatal("take succeeded on a fully drained bucket")
	}
}

// TestGlobalLimiterPrioritizesData: at the global ceiling, Hellos stop
// being admitted while Data of admitted sessions still passes — the
// prioritized-shedding contract.
func TestGlobalLimiterPrioritizesData(t *testing.T) {
	g := newGlobalLimiter(10, 8) // burst 8, hello reserve 2
	now := time.Millisecond
	hellos := 0
	for g.admit(now, true) {
		hellos++
		if hellos > 100 {
			t.Fatal("hello admission never hit the reserve")
		}
	}
	if hellos != 6 {
		t.Fatalf("admitted %d hellos before the reserve, want 6 (burst 8 - floor 2)", hellos)
	}
	data := 0
	for g.admit(now, false) {
		data++
		if data > 100 {
			t.Fatal("data admission never drained the bucket")
		}
	}
	if data != 2 {
		t.Fatalf("admitted %d data packets from the reserve, want 2", data)
	}
	// Nil limiter (feature disabled) admits everything.
	var off *globalLimiter
	if !off.admit(now, true) || !off.admit(now, false) {
		t.Fatal("disabled global limiter refused a packet")
	}
}

// TestSourceLimiterIsolatesSources: one source exhausting its bucket
// must not affect another, and the sweep forgets idle sources.
func TestSourceLimiterIsolatesSources(t *testing.T) {
	l := newSourceLimiter(5, 3, 4, 50*time.Millisecond)
	a := &net.UDPAddr{IP: net.IPv4(192, 0, 2, 1), Port: 1111}
	a2 := &net.UDPAddr{IP: net.IPv4(192, 0, 2, 1), Port: 2222} // same IP, new port
	b := &net.UDPAddr{IP: net.IPv4(192, 0, 2, 2), Port: 1111}

	now := time.Millisecond
	for i := 0; i < 3; i++ {
		if !l.admit(now, a) {
			t.Fatalf("source A take %d refused under burst", i)
		}
	}
	if l.admit(now, a) {
		t.Fatal("source A admitted past its burst")
	}
	// The limit is per IP, not per socket: a new port shares the bucket.
	if l.admit(now, a2) {
		t.Fatal("same IP on a new port escaped the source limit")
	}
	if !l.admit(now, b) {
		t.Fatal("source B starved by source A's exhaustion")
	}
	if got := l.size(); got != 2 {
		t.Fatalf("tracked sources = %d, want 2", got)
	}

	// Idle past the TTL, the sweep forgets both; A starts fresh.
	later := now + 100*time.Millisecond
	l.sweep(later)
	if got := l.size(); got != 0 {
		t.Fatalf("tracked sources after sweep = %d, want 0", got)
	}
	if !l.admit(later, a) {
		t.Fatal("swept source not readmitted with a fresh bucket")
	}

	var off *sourceLimiter
	if !off.admit(now, a) {
		t.Fatal("disabled source limiter refused a packet")
	}
	off.sweep(now) // must not panic
	if off.size() != 0 {
		t.Fatal("disabled source limiter reports tracked sources")
	}
}
