package mlab

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"strings"
	"testing"
)

func genTestDataset(t *testing.T, flows int, seed int64) []Record {
	t.Helper()
	return Generate(GeneratorConfig{Flows: flows, Seed: seed})
}

func TestRecordStreamRoundTrip(t *testing.T) {
	recs := genTestDataset(t, 50, 1)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	s, err := NewRecordStream(&buf, StreamLimits{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var rec Record
	for i := range recs {
		if err := s.Next(&rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.ID != recs[i].ID || len(rec.Snapshots) != len(recs[i].Snapshots) {
			t.Fatalf("record %d: got %s/%d snapshots, want %s/%d",
				i, rec.ID, len(rec.Snapshots), recs[i].ID, len(recs[i].Snapshots))
		}
	}
	if err := s.Next(&rec); err != io.EOF {
		t.Fatalf("after last record: got %v, want io.EOF", err)
	}
	if s.Count() != len(recs) {
		t.Fatalf("Count() = %d, want %d", s.Count(), len(recs))
	}
}

func TestRecordStreamGzipAutodetect(t *testing.T) {
	recs := genTestDataset(t, 20, 2)
	var plain bytes.Buffer
	if err := WriteJSONL(&plain, recs); err != nil {
		t.Fatal(err)
	}
	var zipped bytes.Buffer
	gz := gzip.NewWriter(&zipped)
	if _, err := gz.Write(plain.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadJSONL(&zipped)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("gzip read returned %d records, want %d", len(got), len(recs))
	}
	for i := range got {
		if got[i].ID != recs[i].ID {
			t.Fatalf("record %d: ID %s, want %s", i, got[i].ID, recs[i].ID)
		}
	}
}

func TestJSONLWriterGzipRoundTrip(t *testing.T) {
	recs := genTestDataset(t, 20, 3)
	var buf bytes.Buffer
	jw := NewJSONLWriter(&buf, true)
	for i := range recs {
		if err := jw.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("got %d records, want %d", len(got), len(recs))
	}
}

func TestRecordStreamTruncatedRecord(t *testing.T) {
	recs := genTestDataset(t, 3, 4)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	// Chop the final record mid-JSON.
	b := buf.Bytes()
	b = b[:len(b)-len(b)/8]
	_, err := ReadJSONL(bytes.NewReader(b))
	if err == nil {
		t.Fatal("truncated input decoded without error")
	}
	if !strings.Contains(err.Error(), "decoding record 2") {
		t.Fatalf("error %q does not name the failing record index 2", err)
	}
}

func TestRecordStreamLimits(t *testing.T) {
	recs := genTestDataset(t, 5, 5)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	_, err := ReadJSONLLimited(bytes.NewReader(data), StreamLimits{MaxRecords: 3})
	if err == nil || !strings.Contains(err.Error(), "record 3 exceeds the 3-record limit") {
		t.Fatalf("MaxRecords violation: got %v", err)
	}

	_, err = ReadJSONLLimited(bytes.NewReader(data), StreamLimits{MaxRecordBytes: 100})
	if err == nil || !strings.Contains(err.Error(), "line limit") {
		t.Fatalf("MaxRecordBytes violation: got %v", err)
	}

	got, err := ReadJSONLLimited(bytes.NewReader(data), StreamLimits{MaxRecords: 5})
	if err != nil || len(got) != 5 {
		t.Fatalf("at-limit read: got %d records, err %v", len(got), err)
	}
}

func TestRecordStreamBlankLines(t *testing.T) {
	recs := genTestDataset(t, 2, 6)
	var buf bytes.Buffer
	buf.WriteString("\n")
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("\n\n")
	got, err := ReadJSONL(&buf)
	if err != nil || len(got) != 2 {
		t.Fatalf("blank-line input: got %d records, err %v", len(got), err)
	}
}

func reportString(t *testing.T, a *Analysis) string {
	t.Helper()
	var buf bytes.Buffer
	if err := a.WriteReport(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestAnalyzeStreamMatchesAnalyze(t *testing.T) {
	recs := genTestDataset(t, 400, 7)
	cfg := AnalysisConfig{}
	want := Analyze(recs, cfg)

	for _, workers := range []int{1, 2, 8} {
		got, err := AnalyzeStream(&SliceSource{Recs: recs}, cfg, StreamOptions{
			Workers: workers, KeepResults: true, ExactShiftCDF: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if rw, rg := reportString(t, want), reportString(t, got); rw != rg {
			t.Fatalf("workers=%d: report differs:\n--- want\n%s\n--- got\n%s", workers, rw, rg)
		}
		if got.Validate() != want.Validate() {
			t.Fatalf("workers=%d: validation %+v, want %+v", workers, got.Validate(), want.Validate())
		}
		if len(got.Results) != len(want.Results) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got.Results), len(want.Results))
		}
		for i := range got.Results {
			if got.Results[i].ID != want.Results[i].ID || got.Results[i].Category != want.Results[i].Category {
				t.Fatalf("workers=%d: result %d = %s/%s, want %s/%s (results must be in input order)",
					workers, i, got.Results[i].ID, got.Results[i].Category,
					want.Results[i].ID, want.Results[i].Category)
			}
		}
	}
}

func TestAnalyzeStreamSketchDeterministic(t *testing.T) {
	recs := genTestDataset(t, 400, 8)
	cfg := AnalysisConfig{}
	var first string
	for _, workers := range []int{1, 4, 8} {
		a, err := AnalyzeStream(&SliceSource{Recs: recs}, cfg, StreamOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if a.Results != nil {
			t.Fatalf("workers=%d: aggregate mode retained %d results", workers, len(a.Results))
		}
		r := reportString(t, a)
		if first == "" {
			first = r
		} else if r != first {
			t.Fatalf("workers=%d: sketch report differs from workers=1:\n%s\nvs\n%s", workers, r, first)
		}
	}
}

func TestSketchTracksExactCDF(t *testing.T) {
	recs := genTestDataset(t, 600, 9)
	exact, err := AnalyzeStream(&SliceSource{Recs: recs}, AnalysisConfig{}, StreamOptions{Workers: 1, ExactShiftCDF: true})
	if err != nil {
		t.Fatal(err)
	}
	sketched, err := AnalyzeStream(&SliceSource{Recs: recs}, AnalysisConfig{}, StreamOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if exact.ShiftLen() == 0 || exact.ShiftLen() != sketched.ShiftLen() {
		t.Fatalf("shift sample counts: exact %d, sketched %d", exact.ShiftLen(), sketched.ShiftLen())
	}
	// Equivalence is checked in rank space: a sketch quantile's value
	// can legitimately sit anywhere in a gap between samples, but the
	// exact CDF evaluated at that value must land within a small
	// cumulative-fraction tolerance of the requested q (the sketch's
	// rank error is bounded by the occupancy of a single bin).
	const tol = 0.02
	for _, pt := range sketched.ShiftPoints(21) {
		v, q := pt[0], pt[1]
		if q == 0 || q == 1 {
			continue // exact extremes by construction
		}
		if got := exact.ShiftCDF.At(v); got < q-tol || got > q+tol {
			t.Fatalf("sketch q=%.3f -> value %.6f, but exact CDF puts that value at fraction %.4f (tol %.2f)", q, v, got, tol)
		}
	}
	// The compact summary strings must agree to display precision on
	// every quantile they print (modulo the CDF~ marker).
	es, ss := exact.ShiftCDF.String(), sketched.ShiftSketch.String()
	if minE, minS := es[:len("CDF(min=0.2")], strings.Replace(ss, "CDF~(", "CDF(", 1)[:len("CDF(min=0.2")]; minE != minS {
		t.Fatalf("summary prefixes diverge: %q vs %q", es, ss)
	}
}

func TestAnalyzeStreamPropagatesSourceError(t *testing.T) {
	recs := genTestDataset(t, 10, 10)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:buf.Len()/2]
	for _, workers := range []int{1, 4} {
		s, err := NewRecordStream(bytes.NewReader(b), StreamLimits{})
		if err != nil {
			t.Fatal(err)
		}
		_, err = AnalyzeStream(s, AnalysisConfig{}, StreamOptions{Workers: workers})
		if err == nil || !strings.Contains(err.Error(), "decoding record") {
			t.Fatalf("workers=%d: truncated stream: got %v, want decoding error", workers, err)
		}
		s.Close()
	}
}

func TestGenSourceMatchesGenerate(t *testing.T) {
	cfg := GeneratorConfig{Flows: 200, Seed: 11}
	want := Generate(cfg)
	src := NewGenSource(cfg)
	var rec Record
	for i := range want {
		if err := src.Next(&rec); err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rec.ID != want[i].ID || rec.MeanThroughputBps != want[i].MeanThroughputBps ||
			rec.TruthLabel != want[i].TruthLabel || len(rec.Snapshots) != len(want[i].Snapshots) {
			t.Fatalf("record %d: streamed record differs from Generate's", i)
		}
	}
	if err := src.Next(&rec); err != io.EOF {
		t.Fatalf("after last record: got %v, want io.EOF", err)
	}
}

func TestGenerateJSONLSequentialMatchesWriteJSONL(t *testing.T) {
	cfg := GeneratorConfig{Flows: 150, Seed: 12}
	var want bytes.Buffer
	if err := WriteJSONL(&want, Generate(cfg)); err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	stats, err := GenerateJSONL(&got, cfg, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 150 {
		t.Fatalf("stats.Records = %d, want 150", stats.Records)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("streamed legacy-mode output differs from Generate + WriteJSONL")
	}
}

func TestGenerateJSONLShardedDeterministic(t *testing.T) {
	cfg := GeneratorConfig{Flows: 500, Seed: 13, ShardSize: 64}
	var seq bytes.Buffer
	seqStats, err := GenerateJSONL(&seq, cfg, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		var par bytes.Buffer
		parStats, err := GenerateJSONL(&par, cfg, workers, false)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(par.Bytes(), seq.Bytes()) {
			t.Fatalf("workers=%d: sharded output differs from sequential", workers)
		}
		if parStats.Records != seqStats.Records {
			t.Fatalf("workers=%d: %d records, want %d", workers, parStats.Records, seqStats.Records)
		}
		for l, n := range seqStats.ByLabel {
			if parStats.ByLabel[l] != n {
				t.Fatalf("workers=%d: label %s count %d, want %d", workers, l, parStats.ByLabel[l], n)
			}
		}
	}
}

func TestGenerateJSONLShardedGzip(t *testing.T) {
	cfg := GeneratorConfig{Flows: 200, Seed: 14, ShardSize: 32}
	var plain, zipped bytes.Buffer
	if _, err := GenerateJSONL(&plain, cfg, 4, false); err != nil {
		t.Fatal(err)
	}
	if _, err := GenerateJSONL(&zipped, cfg, 4, true); err != nil {
		t.Fatal(err)
	}
	gz, err := gzip.NewReader(&zipped)
	if err != nil {
		t.Fatal(err)
	}
	unzipped, err := io.ReadAll(gz)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(unzipped, plain.Bytes()) {
		t.Fatal("gzipped sharded output does not decompress to the plain output")
	}
}

func TestGenerateShardedViaGenSource(t *testing.T) {
	// A single GenSource over a sharded config must agree with the
	// parallel sharded writer (it reseeds at every shard boundary).
	cfg := GeneratorConfig{Flows: 130, Seed: 15, ShardSize: 40}
	var want bytes.Buffer
	if _, err := GenerateJSONL(&want, cfg, 4, false); err != nil {
		t.Fatal(err)
	}
	src := NewGenSource(cfg)
	var got bytes.Buffer
	jw := NewJSONLWriter(&got, false)
	var rec Record
	for {
		if err := src.Next(&rec); err != nil {
			if err != io.EOF {
				t.Fatal(err)
			}
			break
		}
		if err := jw.Write(&rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("sequential sharded GenSource output differs from GenerateJSONL")
	}
}

func TestAnalyzeStreamZeroAllocSteadyState(t *testing.T) {
	recs := genTestDataset(t, 64, 16)
	src := &SliceSource{Recs: recs}
	var sc scratch
	var rec Record
	cfg := AnalysisConfig{}.norm()
	// Warm up the scratch on the largest flows.
	for i := 0; i < len(recs); i++ {
		rec = recs[i]
		analyzeInto(&rec, cfg, &sc)
	}
	src.i = 0
	i := 0
	allocs := testing.AllocsPerRun(60, func() {
		rec = recs[i%len(recs)]
		analyzeInto(&rec, cfg, &sc)
		i++
	})
	if allocs != 0 {
		t.Errorf("analyzeInto allocates %.1f objects per flow after warmup, want 0", allocs)
	}
}

func TestWriteReportReturnsWriterError(t *testing.T) {
	recs := genTestDataset(t, 100, 17)
	a := Analyze(recs, AnalysisConfig{})
	if err := a.WriteReport(failingWriter{}); err == nil {
		t.Fatal("WriteReport swallowed the writer error")
	}
}

type failingWriter struct{}

func (failingWriter) Write(p []byte) (int, error) { return 0, fmt.Errorf("disk full") }
