package mlab

import (
	"io"
	"runtime"
	"sort"
	"sync"

	"repro/internal/stats"
)

// shiftSketchBins sizes the aggregate-mode shift-magnitude sketch.
// Magnitudes are relative (in [0, 1)), so 4096 bins bound the quantile
// error at ~0.025% of the range for a fixed 32 KiB of state.
const shiftSketchBins = 4096

func newShiftSketch() *stats.Sketch { return stats.NewSketch(0, 1, shiftSketchBins) }

// StreamOptions tunes AnalyzeStream.
type StreamOptions struct {
	// Workers is the analysis fan-out (<= 0 means GOMAXPROCS). The
	// aggregate outcome is byte-identical for every worker count.
	Workers int
	// KeepResults retains per-flow FlowResults (in input order), which
	// costs O(flows) memory. Leave unset for the constant-memory
	// aggregate mode.
	KeepResults bool
	// ExactShiftCDF stores every accepted shift magnitude in an exact
	// CDF instead of the constant-memory sketch. Appropriate for
	// paper-scale datasets and tests; the sketch tracks it within
	// 1/4096 of the magnitude range.
	ExactShiftCDF bool
}

// partial is one worker's aggregate: pure sums, counts, and a
// mergeable sketch, so merging partials in any partition of the input
// yields the same Analysis.
type partial struct {
	total   int
	byCat   [numCats]int
	val     Validation
	exact   []float64
	sketch  *stats.Sketch
	results []indexedResult
}

type indexedResult struct {
	idx int
	res FlowResult
}

func newPartial(opt StreamOptions) *partial {
	p := &partial{}
	if !opt.ExactShiftCDF {
		p.sketch = newShiftSketch()
	}
	return p
}

// add folds one flow's verdict in. res's slices may alias a scratch;
// they are copied only when results are retained.
func (p *partial) add(res *FlowResult, idx int, opt StreamOptions) {
	p.total++
	p.byCat[catIndex(res.Category)]++
	if res.Category == CatLevelShift {
		for _, m := range res.ShiftMagnitudes {
			if p.sketch != nil {
				p.sketch.Add(m)
			} else {
				p.exact = append(p.exact, m)
			}
		}
	}
	p.val.scoreTruth(res)
	if opt.KeepResults {
		kept := *res
		kept.Breakpoints = append([]int(nil), res.Breakpoints...)
		kept.ShiftMagnitudes = append([]float64(nil), res.ShiftMagnitudes...)
		p.results = append(p.results, indexedResult{idx: idx, res: kept})
	}
}

const numCats = 6

func catIndex(c Category) int {
	switch c {
	case CatShort:
		return 0
	case CatAppLimited:
		return 1
	case CatRWndLimited:
		return 2
	case CatCellular:
		return 3
	case CatStable:
		return 4
	default: // CatLevelShift
		return 5
	}
}

// AnalyzeStream runs the §3.1 pipeline over a record stream with a
// bounded-memory worker pool: the source is decoded once, records fan
// out to workers that each carry a reusable scratch (zero steady-state
// allocations per flow on the default detector), and the per-worker
// aggregates merge into one Analysis.
//
// Determinism: the merged aggregate — category counts, validation
// counts, and the shift-magnitude distribution (sorted exact samples
// or pure-count sketch) — is a function of the record multiset only,
// and retained results are re-ordered to input order, so the Analysis
// (and anything rendered from it) is byte-identical for every worker
// count. Memory is O(workers x flow size) plus the aggregates; the
// dataset itself is never materialized.
func AnalyzeStream(src RecordSource, cfg AnalysisConfig, opt StreamOptions) (*Analysis, error) {
	cfg = cfg.norm()
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var parts []*partial
	var srcErr error
	if workers == 1 {
		p := newPartial(opt)
		var sc scratch
		var rec Record
		idx := 0
		for {
			if err := src.Next(&rec); err != nil {
				if err != io.EOF {
					srcErr = err
				}
				break
			}
			res := analyzeInto(&rec, cfg, &sc)
			p.add(&res, idx, opt)
			idx++
		}
		parts = []*partial{p}
	} else {
		parts, srcErr = analyzeParallel(src, cfg, opt, workers)
	}
	if srcErr != nil {
		return nil, srcErr
	}
	return mergePartials(parts, cfg, opt), nil
}

type analyzeJob struct {
	rec *Record
	idx int
}

func analyzeParallel(src RecordSource, cfg AnalysisConfig, opt StreamOptions, workers int) ([]*partial, error) {
	// The record pool bounds decoded-but-unprocessed records: the
	// producer recycles records the workers hand back, so steady-state
	// decoding reuses the same ~2x-workers buffers.
	poolSize := workers * 2
	free := make(chan *Record, poolSize)
	for i := 0; i < poolSize; i++ {
		free <- new(Record)
	}
	work := make(chan analyzeJob, workers)

	parts := make([]*partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		p := newPartial(opt)
		parts[w] = p
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc scratch
			for j := range work {
				res := analyzeInto(j.rec, cfg, &sc)
				p.add(&res, j.idx, opt)
				free <- j.rec
			}
		}()
	}

	var srcErr error
	idx := 0
	for {
		rec := <-free
		if err := src.Next(rec); err != nil {
			if err != io.EOF {
				srcErr = err
			}
			break
		}
		work <- analyzeJob{rec: rec, idx: idx}
		idx++
	}
	close(work)
	wg.Wait()
	return parts, srcErr
}

func mergePartials(parts []*partial, cfg AnalysisConfig, opt StreamOptions) *Analysis {
	a := &Analysis{ByCat: make(map[Category]int), cfg: cfg}
	if opt.ExactShiftCDF {
		a.ShiftCDF = stats.NewCDF(nil)
	} else {
		a.ShiftSketch = newShiftSketch()
	}
	order := CategoryOrder()
	nResults := 0
	for _, p := range parts {
		a.Total += p.total
		for i, n := range p.byCat {
			if n > 0 {
				a.ByCat[order[i]] += n
			}
		}
		a.val.merge(p.val)
		for _, m := range p.exact {
			a.ShiftCDF.Add(m)
		}
		if p.sketch != nil {
			// Same geometry by construction.
			if err := a.ShiftSketch.Merge(p.sketch); err != nil {
				panic(err)
			}
		}
		nResults += len(p.results)
	}
	if opt.KeepResults && nResults > 0 {
		indexed := make([]indexedResult, 0, nResults)
		for _, p := range parts {
			indexed = append(indexed, p.results...)
		}
		sort.Slice(indexed, func(i, j int) bool { return indexed[i].idx < indexed[j].idx })
		a.Results = make([]FlowResult, len(indexed))
		for i := range indexed {
			a.Results[i] = indexed[i].res
		}
	}
	return a
}
