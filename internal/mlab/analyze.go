package mlab

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/changepoint"
	"repro/internal/stats"
)

// Category is the analysis pipeline's classification of a flow —
// assigned exactly as §3.1 describes, using only observable fields.
type Category string

// Pipeline categories, in filtering order.
const (
	CatShort       Category = "short"        // too brief for CCA dynamics to matter
	CatAppLimited  Category = "app-limited"  // AppLimited > 0
	CatRWndLimited Category = "rwnd-limited" // RWndLimited > 0
	CatCellular    Category = "cellular"     // inferred cellular access
	CatStable      Category = "stable"       // remainder, no throughput level change
	CatLevelShift  Category = "level-shift"  // remainder, throughput level changed
)

// AnalysisConfig tunes the Figure 2 pipeline.
type AnalysisConfig struct {
	// MinDuration excludes shorter flows as "short" (default 2s).
	MinDuration time.Duration
	// MinShiftFrac is the relative difference between adjacent segment
	// means required to count a detected breakpoint as a real level
	// shift (default 0.2).
	MinShiftFrac float64
	// MinSegment is the change-point detector's minimum segment length
	// in snapshots (default 10, i.e. 1s at the NDT cadence).
	MinSegment int
	// PenaltyScale scales the BIC penalty (default 1).
	PenaltyScale float64
	// Detector selects the change-point algorithm: "pelt" (default),
	// "binseg", or "window".
	Detector string
}

func (c AnalysisConfig) norm() AnalysisConfig {
	if c.MinDuration <= 0 {
		c.MinDuration = 2 * time.Second
	}
	if c.MinShiftFrac <= 0 {
		c.MinShiftFrac = 0.2
	}
	if c.MinSegment <= 0 {
		c.MinSegment = 10
	}
	if c.PenaltyScale <= 0 {
		c.PenaltyScale = 1
	}
	if c.Detector == "" {
		c.Detector = "pelt"
	}
	return c
}

// FlowResult is the pipeline's verdict for one record.
type FlowResult struct {
	ID       string
	Category Category
	// Breakpoints are snapshot indices of accepted level shifts.
	Breakpoints []int
	// ShiftMagnitudes are the relative magnitudes of accepted shifts.
	ShiftMagnitudes []float64
	// Truth is the generator label, carried through for validation.
	Truth Label
}

// Analysis is the aggregate outcome of running the pipeline on a
// dataset.
type Analysis struct {
	Total   int
	ByCat   map[Category]int
	Results []FlowResult
	// ShiftCDF collects relative shift magnitudes across flows with
	// level shifts.
	ShiftCDF *stats.CDF
	cfg      AnalysisConfig
}

// Analyze runs the paper's passive pipeline over the dataset: exclude
// short, application-limited, receiver-limited, and cellular flows;
// run change-point detection on the remainder's throughput traces;
// flag flows whose throughput level shifted.
func Analyze(recs []Record, cfg AnalysisConfig) *Analysis {
	cfg = cfg.norm()
	a := &Analysis{
		Total:    len(recs),
		ByCat:    make(map[Category]int),
		ShiftCDF: stats.NewCDF(nil),
		cfg:      cfg,
	}
	for i := range recs {
		r := &recs[i]
		res := analyzeOne(r, cfg)
		a.ByCat[res.Category]++
		if res.Category == CatLevelShift {
			for _, m := range res.ShiftMagnitudes {
				a.ShiftCDF.Add(m)
			}
		}
		a.Results = append(a.Results, res)
	}
	return a
}

func analyzeOne(r *Record, cfg AnalysisConfig) FlowResult {
	res := FlowResult{ID: r.ID, Truth: r.TruthLabel}
	final := r.FinalSnapshot()
	switch {
	case r.Duration < cfg.MinDuration:
		res.Category = CatShort
	case final.AppLimited > 0:
		res.Category = CatAppLimited
	case final.RWndLimited > 0:
		res.Category = CatRWndLimited
	case r.Access == AccessCellular:
		res.Category = CatCellular
	default:
		res.Category = CatStable
		trace := r.ThroughputTrace()
		bps := detect(trace, cfg)
		means := changepoint.SegmentMeans(trace, bps)
		// Accept a breakpoint only when adjacent segment means differ
		// by MinShiftFrac relative to the larger one.
		for k, b := range bps {
			hi := means[k]
			lo := means[k+1]
			if lo > hi {
				hi, lo = lo, hi
			}
			if hi <= 0 {
				continue
			}
			mag := (hi - lo) / hi
			if mag >= cfg.MinShiftFrac {
				res.Breakpoints = append(res.Breakpoints, b)
				res.ShiftMagnitudes = append(res.ShiftMagnitudes, mag)
			}
		}
		if len(res.Breakpoints) > 0 {
			res.Category = CatLevelShift
		}
	}
	return res
}

func detect(trace []float64, cfg AnalysisConfig) []int {
	sigma2 := changepoint.EstimateNoise(trace)
	pen := cfg.PenaltyScale * changepoint.BICPenalty(len(trace), sigma2) * float64(cfg.MinSegment)
	switch cfg.Detector {
	case "binseg":
		return changepoint.BinSeg(trace, pen, cfg.MinSegment, 8)
	case "window":
		// Threshold in mean-shift units: a few sigma.
		thr := 4 * math.Sqrt(sigma2)
		return changepoint.Window(trace, cfg.MinSegment, thr)
	default:
		return changepoint.PELT(trace, pen, cfg.MinSegment)
	}
}

// Fraction returns the fraction of flows in the given category.
func (a *Analysis) Fraction(c Category) float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(a.ByCat[c]) / float64(a.Total)
}

// Validation compares the pipeline's level-shift verdicts against the
// generator's ground truth (synthetic datasets only).
type Validation struct {
	TruePos, FalsePos, TrueNeg, FalseNeg int
}

// Precision returns TP/(TP+FP), or 0 when undefined.
func (v Validation) Precision() float64 {
	d := v.TruePos + v.FalsePos
	if d == 0 {
		return 0
	}
	return float64(v.TruePos) / float64(d)
}

// Recall returns TP/(TP+FN), or 0 when undefined.
func (v Validation) Recall() float64 {
	d := v.TruePos + v.FalseNeg
	if d == 0 {
		return 0
	}
	return float64(v.TruePos) / float64(d)
}

// Validate scores level-shift detection against ground truth over the
// flows that reached the change-point stage (i.e. categorized stable
// or level-shift). A "positive" is a contending flow.
func (a *Analysis) Validate() Validation {
	var v Validation
	for _, r := range a.Results {
		if r.Category != CatStable && r.Category != CatLevelShift {
			continue
		}
		truthPositive := r.Truth == LabelContending || r.Truth == LabelPoliced
		detected := r.Category == CatLevelShift
		switch {
		case truthPositive && detected:
			v.TruePos++
		case truthPositive && !detected:
			v.FalseNeg++
		case !truthPositive && detected:
			v.FalsePos++
		default:
			v.TrueNeg++
		}
	}
	return v
}

// WriteReport renders the Figure 2 style summary to w: the category
// breakdown and the level-shift statistics among candidate flows.
func (a *Analysis) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "M-Lab NDT passive analysis (%d flows)\n", a.Total)
	fmt.Fprintf(w, "%-14s %8s %8s\n", "category", "flows", "frac")
	cats := []Category{CatShort, CatAppLimited, CatRWndLimited, CatCellular, CatStable, CatLevelShift}
	for _, c := range cats {
		fmt.Fprintf(w, "%-14s %8d %7.1f%%\n", c, a.ByCat[c], 100*a.Fraction(c))
	}
	candidates := a.ByCat[CatStable] + a.ByCat[CatLevelShift]
	total := a.Total
	if total < 1 {
		total = 1
	}
	fmt.Fprintf(w, "\ncandidate (non-excluded) flows: %d (%.1f%%)\n", candidates, 100*float64(candidates)/float64(total))
	if candidates > 0 {
		fmt.Fprintf(w, "with throughput level shift:    %d (%.1f%% of candidates)\n",
			a.ByCat[CatLevelShift], 100*float64(a.ByCat[CatLevelShift])/float64(candidates))
	}
	if a.ShiftCDF.Len() > 0 {
		fmt.Fprintf(w, "shift magnitude CDF: %v\n", a.ShiftCDF)
	}
}

// CategoryOrder returns pipeline categories in display order.
func CategoryOrder() []Category {
	return []Category{CatShort, CatAppLimited, CatRWndLimited, CatCellular, CatStable, CatLevelShift}
}

// SortResultsByID orders results deterministically (generation order is
// already deterministic; this helps after map-based regrouping).
func SortResultsByID(rs []FlowResult) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].ID < rs[j].ID })
}
