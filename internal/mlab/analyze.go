package mlab

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/changepoint"
	"repro/internal/stats"
)

// Category is the analysis pipeline's classification of a flow —
// assigned exactly as §3.1 describes, using only observable fields.
type Category string

// Pipeline categories, in filtering order.
const (
	CatShort       Category = "short"        // too brief for CCA dynamics to matter
	CatAppLimited  Category = "app-limited"  // AppLimited > 0
	CatRWndLimited Category = "rwnd-limited" // RWndLimited > 0
	CatCellular    Category = "cellular"     // inferred cellular access
	CatStable      Category = "stable"       // remainder, no throughput level change
	CatLevelShift  Category = "level-shift"  // remainder, throughput level changed
)

// AnalysisConfig tunes the Figure 2 pipeline.
type AnalysisConfig struct {
	// MinDuration excludes shorter flows as "short" (default 2s).
	MinDuration time.Duration
	// MinShiftFrac is the relative difference between adjacent segment
	// means required to count a detected breakpoint as a real level
	// shift (default 0.2).
	MinShiftFrac float64
	// MinSegment is the change-point detector's minimum segment length
	// in snapshots (default 10, i.e. 1s at the NDT cadence).
	MinSegment int
	// PenaltyScale scales the BIC penalty (default 1).
	PenaltyScale float64
	// Detector selects the change-point algorithm: "pelt" (default),
	// "binseg", or "window".
	Detector string
}

func (c AnalysisConfig) norm() AnalysisConfig {
	if c.MinDuration <= 0 {
		c.MinDuration = 2 * time.Second
	}
	if c.MinShiftFrac <= 0 {
		c.MinShiftFrac = 0.2
	}
	if c.MinSegment <= 0 {
		c.MinSegment = 10
	}
	if c.PenaltyScale <= 0 {
		c.PenaltyScale = 1
	}
	if c.Detector == "" {
		c.Detector = "pelt"
	}
	return c
}

// FlowResult is the pipeline's verdict for one record.
type FlowResult struct {
	ID       string
	Category Category
	// Breakpoints are snapshot indices of accepted level shifts.
	Breakpoints []int
	// ShiftMagnitudes are the relative magnitudes of accepted shifts.
	ShiftMagnitudes []float64
	// Truth is the generator label, carried through for validation.
	Truth Label
}

// Analysis is the aggregate outcome of running the pipeline on a
// dataset. Depending on how it was produced, per-flow Results may be
// absent (streaming aggregate mode) and the shift-magnitude
// distribution may be exact (ShiftCDF) or sketched (ShiftSketch) —
// see StreamOptions.
type Analysis struct {
	Total   int
	ByCat   map[Category]int
	Results []FlowResult
	// ShiftCDF collects relative shift magnitudes across flows with
	// level shifts (exact mode; nil when sketched).
	ShiftCDF *stats.CDF
	// ShiftSketch is the constant-memory shift-magnitude distribution
	// (aggregate mode; nil when exact).
	ShiftSketch *stats.Sketch `json:"ShiftSketch,omitempty"`
	val         Validation
	cfg         AnalysisConfig
}

// Analyze runs the paper's passive pipeline over the dataset: exclude
// short, application-limited, receiver-limited, and cellular flows;
// run change-point detection on the remainder's throughput traces;
// flag flows whose throughput level shifted.
//
// It materializes per-flow results and an exact shift CDF, matching
// the historical behavior; large datasets should stream through
// AnalyzeStream instead.
func Analyze(recs []Record, cfg AnalysisConfig) *Analysis {
	a, err := AnalyzeStream(&SliceSource{Recs: recs}, cfg, StreamOptions{
		Workers:       1,
		KeepResults:   true,
		ExactShiftCDF: true,
	})
	if err != nil {
		// A slice source cannot fail to decode.
		panic(err)
	}
	return a
}

// scratch carries one worker's reusable buffers: the throughput
// trace, the change-point detector's arrays, and the accepted
// breakpoint/magnitude lists. After warmup, analyzing a flow with the
// default (PELT) detector performs no heap allocations.
type scratch struct {
	trace []float64
	cp    changepoint.Scratch
	bps   []int
	mags  []float64
}

// analyzeInto classifies one record. The result's Breakpoints and
// ShiftMagnitudes alias sc and are valid until the next call.
func analyzeInto(r *Record, cfg AnalysisConfig, sc *scratch) FlowResult {
	res := FlowResult{ID: r.ID, Truth: r.TruthLabel}
	final := r.FinalSnapshot()
	switch {
	case r.Duration < cfg.MinDuration:
		res.Category = CatShort
	case final.AppLimited > 0:
		res.Category = CatAppLimited
	case final.RWndLimited > 0:
		res.Category = CatRWndLimited
	case r.Access == AccessCellular:
		res.Category = CatCellular
	default:
		res.Category = CatStable
		sc.trace = r.ThroughputTraceInto(sc.trace)
		trace := sc.trace
		bps := detect(trace, cfg, sc)
		means := sc.cp.SegmentMeans(trace, bps)
		// Accept a breakpoint only when adjacent segment means differ
		// by MinShiftFrac relative to the larger one.
		sc.bps = sc.bps[:0]
		sc.mags = sc.mags[:0]
		for k, b := range bps {
			hi := means[k]
			lo := means[k+1]
			if lo > hi {
				hi, lo = lo, hi
			}
			if hi <= 0 {
				continue
			}
			mag := (hi - lo) / hi
			if mag >= cfg.MinShiftFrac {
				sc.bps = append(sc.bps, b)
				sc.mags = append(sc.mags, mag)
			}
		}
		if len(sc.bps) > 0 {
			res.Category = CatLevelShift
			res.Breakpoints = sc.bps
			res.ShiftMagnitudes = sc.mags
		}
	}
	return res
}

func detect(trace []float64, cfg AnalysisConfig, sc *scratch) []int {
	sigma2 := sc.cp.EstimateNoise(trace)
	pen := cfg.PenaltyScale * changepoint.BICPenalty(len(trace), sigma2) * float64(cfg.MinSegment)
	switch cfg.Detector {
	case "binseg":
		return changepoint.BinSeg(trace, pen, cfg.MinSegment, 8)
	case "window":
		// Threshold in mean-shift units: a few sigma.
		thr := 4 * math.Sqrt(sigma2)
		return changepoint.Window(trace, cfg.MinSegment, thr)
	default:
		return sc.cp.PELT(trace, pen, cfg.MinSegment)
	}
}

// Fraction returns the fraction of flows in the given category.
func (a *Analysis) Fraction(c Category) float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(a.ByCat[c]) / float64(a.Total)
}

// Validation compares the pipeline's level-shift verdicts against the
// generator's ground truth (synthetic datasets only).
type Validation struct {
	TruePos, FalsePos, TrueNeg, FalseNeg int
}

// Precision returns TP/(TP+FP), or 0 when undefined.
func (v Validation) Precision() float64 {
	d := v.TruePos + v.FalsePos
	if d == 0 {
		return 0
	}
	return float64(v.TruePos) / float64(d)
}

// Recall returns TP/(TP+FN), or 0 when undefined.
func (v Validation) Recall() float64 {
	d := v.TruePos + v.FalseNeg
	if d == 0 {
		return 0
	}
	return float64(v.TruePos) / float64(d)
}

// Validate scores level-shift detection against ground truth over the
// flows that reached the change-point stage (i.e. categorized stable
// or level-shift). A "positive" is a contending flow. The counts are
// accumulated while flows stream through the pipeline, so they are
// available even when per-flow Results were not retained.
func (a *Analysis) Validate() Validation { return a.val }

// scoreTruth folds one flow's verdict into the validation counts,
// mirroring Validate's historical definition.
func (v *Validation) scoreTruth(res *FlowResult) {
	if res.Category != CatStable && res.Category != CatLevelShift {
		return
	}
	truthPositive := res.Truth == LabelContending || res.Truth == LabelPoliced
	detected := res.Category == CatLevelShift
	switch {
	case truthPositive && detected:
		v.TruePos++
	case truthPositive && !detected:
		v.FalseNeg++
	case !truthPositive && detected:
		v.FalsePos++
	default:
		v.TrueNeg++
	}
}

func (v *Validation) merge(o Validation) {
	v.TruePos += o.TruePos
	v.FalsePos += o.FalsePos
	v.TrueNeg += o.TrueNeg
	v.FalseNeg += o.FalseNeg
}

// ShiftLen returns the number of accepted shift-magnitude samples,
// whichever distribution backs them.
func (a *Analysis) ShiftLen() int {
	if a.ShiftCDF != nil {
		return a.ShiftCDF.Len()
	}
	if a.ShiftSketch != nil {
		return a.ShiftSketch.Len()
	}
	return 0
}

// ShiftPoints returns n (value, cumulative fraction) points of the
// shift-magnitude distribution, whichever backing it has.
func (a *Analysis) ShiftPoints(n int) [][2]float64 {
	if a.ShiftCDF != nil {
		return a.ShiftCDF.Points(n)
	}
	if a.ShiftSketch != nil {
		return a.ShiftSketch.Points(n)
	}
	return nil
}

// errWriter tracks the first write error so a report renders with one
// error check instead of one per Fprintf.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	if err != nil {
		ew.err = err
	}
	return n, err
}

// WriteReport renders the Figure 2 style summary to w: the category
// breakdown and the level-shift statistics among candidate flows. It
// returns the first error the underlying writer reported.
func (a *Analysis) WriteReport(w io.Writer) error {
	ew := &errWriter{w: w}
	fmt.Fprintf(ew, "M-Lab NDT passive analysis (%d flows)\n", a.Total)
	fmt.Fprintf(ew, "%-14s %8s %8s\n", "category", "flows", "frac")
	cats := []Category{CatShort, CatAppLimited, CatRWndLimited, CatCellular, CatStable, CatLevelShift}
	for _, c := range cats {
		fmt.Fprintf(ew, "%-14s %8d %7.1f%%\n", c, a.ByCat[c], 100*a.Fraction(c))
	}
	candidates := a.ByCat[CatStable] + a.ByCat[CatLevelShift]
	total := a.Total
	if total < 1 {
		total = 1
	}
	fmt.Fprintf(ew, "\ncandidate (non-excluded) flows: %d (%.1f%%)\n", candidates, 100*float64(candidates)/float64(total))
	if candidates > 0 {
		fmt.Fprintf(ew, "with throughput level shift:    %d (%.1f%% of candidates)\n",
			a.ByCat[CatLevelShift], 100*float64(a.ByCat[CatLevelShift])/float64(candidates))
	}
	if a.ShiftCDF != nil && a.ShiftCDF.Len() > 0 {
		fmt.Fprintf(ew, "shift magnitude CDF: %v\n", a.ShiftCDF)
	} else if a.ShiftSketch != nil && a.ShiftSketch.Len() > 0 {
		fmt.Fprintf(ew, "shift magnitude CDF: %v\n", a.ShiftSketch)
	}
	return ew.err
}

// CategoryOrder returns pipeline categories in display order.
func CategoryOrder() []Category {
	return []Category{CatShort, CatAppLimited, CatRWndLimited, CatCellular, CatStable, CatLevelShift}
}

// SortResultsByID orders results deterministically (generation order is
// already deterministic; this helps after map-based regrouping).
func SortResultsByID(rs []FlowResult) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].ID < rs[j].ID })
}
