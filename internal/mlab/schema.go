// Package mlab models the M-Lab NDT measurement data the paper's
// passive analysis (§3.1) consumes: per-flow records carrying TCP_INFO
// snapshot streams, JSONL encoding for datasets on disk, a synthetic
// dataset generator standing in for the (network-gated) real archive,
// and the filtering + change-point analysis pipeline itself.
//
// The real M-Lab NDT dataset requires BigQuery access; the generator
// reproduces the schema and the behavioural mixture the paper
// describes (application-limited, receiver-limited, cellular, steady
// bulk, contending, and policed flows) while retaining ground-truth
// labels so the pipeline's classification can be validated — something
// impossible with the real data.
package mlab

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/tcpinfo"
)

// Label is the generator's ground-truth flow class. The analysis
// pipeline never reads it; validation code does.
type Label string

// Ground-truth labels for synthetic flows.
const (
	LabelAppLimited  Label = "app-limited"  // e.g. video: bounded offered load
	LabelRWndLimited Label = "rwnd-limited" // slow receiving application
	LabelCellular    Label = "cellular"     // isolated, variable radio link
	LabelSteady      Label = "steady"       // bulk flow, stable allocation
	LabelContending  Label = "contending"   // bulk flow whose share shifts as competitors come and go
	LabelPoliced     Label = "policed"      // token-bucket policed mid-flow
	LabelShort       Label = "short"        // finishes within the initial window
)

// AccessType categorizes the client's access network, mirroring the
// inference the paper applies to exclude cellular clients.
type AccessType string

// Access network types.
const (
	AccessWifi     AccessType = "wifi"
	AccessEthernet AccessType = "ethernet"
	AccessCellular AccessType = "cellular"
	AccessSat      AccessType = "satellite"
)

// Record is one NDT-style measurement: a download test with TCP_INFO
// snapshots over its lifetime.
type Record struct {
	// ID uniquely identifies the test.
	ID string `json:"id"`
	// Start is the test's start time.
	Start time.Time `json:"start"`
	// Duration is the test length.
	Duration time.Duration `json:"duration"`
	// Access is the inferred access-network type.
	Access AccessType `json:"access"`
	// Snapshots is the TCP_INFO stream, typically one per 100ms.
	Snapshots []tcpinfo.Snapshot `json:"snapshots"`
	// MeanThroughputBps is the test's overall delivery rate.
	MeanThroughputBps float64 `json:"mean_throughput_bps"`
	// TruthLabel is the generator's ground truth (empty for real
	// data). Analysis code must not consult it.
	TruthLabel Label `json:"truth_label,omitempty"`
}

// FinalSnapshot returns the last snapshot, or a zero value if none.
func (r *Record) FinalSnapshot() tcpinfo.Snapshot {
	if len(r.Snapshots) == 0 {
		return tcpinfo.Snapshot{}
	}
	return r.Snapshots[len(r.Snapshots)-1]
}

// ThroughputTrace extracts the per-snapshot throughput series in
// bits/s.
func (r *Record) ThroughputTrace() []float64 {
	return r.ThroughputTraceInto(nil)
}

// ThroughputTraceInto extracts the throughput series into buf's
// backing array (growing it only when needed), so a caller processing
// many flows can reuse one buffer allocation-free.
func (r *Record) ThroughputTraceInto(buf []float64) []float64 {
	buf = buf[:0]
	for i := range r.Snapshots {
		buf = append(buf, r.Snapshots[i].ThroughputBps)
	}
	return buf
}

// WriteJSONL encodes records one-per-line to w.
func WriteJSONL(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("mlab: encoding record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL decodes a JSONL dataset from r into memory, with gzip
// autodetection and the default input guards (see StreamLimits). It
// materializes every record; use RecordStream with AnalyzeStream for
// datasets that should not fit in memory.
func ReadJSONL(r io.Reader) ([]Record, error) {
	return ReadJSONLLimited(r, StreamLimits{})
}

// ReadJSONLLimited is ReadJSONL with explicit input guards.
func ReadJSONLLimited(r io.Reader, lim StreamLimits) ([]Record, error) {
	s, err := NewRecordStream(r, lim)
	if err != nil {
		return nil, err
	}
	defer s.Close()
	var recs []Record
	for {
		var rec Record
		if err := s.Next(&rec); err != nil {
			if err == io.EOF {
				return recs, nil
			}
			return nil, err
		}
		recs = append(recs, rec)
	}
}
