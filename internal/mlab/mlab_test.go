package mlab

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestGenerateCountAndDeterminism(t *testing.T) {
	cfg := GeneratorConfig{Flows: 500, Seed: 1}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("counts = %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].TruthLabel != b[i].TruthLabel || a[i].MeanThroughputBps != b[i].MeanThroughputBps {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
	// A different seed yields a different dataset.
	c := Generate(GeneratorConfig{Flows: 500, Seed: 2})
	same := 0
	for i := range a {
		if a[i].TruthLabel == c[i].TruthLabel {
			same++
		}
	}
	if same == 500 {
		t.Error("different seeds produced identical label sequences")
	}
}

func TestGenerateDefaultSize(t *testing.T) {
	recs := Generate(GeneratorConfig{Seed: 1, Flows: 0})
	if len(recs) != 9984 {
		t.Errorf("default flows = %d, want the paper's 9,984", len(recs))
	}
}

func TestGenerateMixtureRoughlyHonored(t *testing.T) {
	recs := Generate(GeneratorConfig{Flows: 4000, Seed: 3})
	counts := map[Label]int{}
	for i := range recs {
		counts[recs[i].TruthLabel]++
	}
	mix := DefaultMixture()
	check := func(l Label, want float64) {
		got := float64(counts[l]) / 4000
		if got < want-0.05 || got > want+0.05 {
			t.Errorf("%s fraction = %.3f, want ~%.3f", l, got, want)
		}
	}
	check(LabelAppLimited, mix.AppLimited)
	check(LabelCellular, mix.Cellular)
	check(LabelContending, mix.Contending)
	check(LabelShort, mix.Short)
}

func TestGeneratedRecordInvariants(t *testing.T) {
	recs := Generate(GeneratorConfig{Flows: 300, Seed: 4})
	for i := range recs {
		r := &recs[i]
		if r.ID == "" || r.Duration <= 0 || len(r.Snapshots) == 0 {
			t.Fatalf("record %d malformed: %+v", i, r)
		}
		prev := time.Duration(0)
		var prevBytes int64
		for _, s := range r.Snapshots {
			if s.At <= prev {
				t.Fatalf("record %d: snapshots not strictly increasing", i)
			}
			if s.BytesAcked < prevBytes {
				t.Fatalf("record %d: BytesAcked not monotone", i)
			}
			if s.ThroughputBps < 0 {
				t.Fatalf("record %d: negative throughput", i)
			}
			prev = s.At
			prevBytes = s.BytesAcked
		}
		if r.TruthLabel == LabelCellular && r.Access != AccessCellular {
			t.Fatalf("record %d: cellular label with access %s", i, r.Access)
		}
		if r.TruthLabel == LabelAppLimited && r.FinalSnapshot().AppLimited == 0 {
			t.Fatalf("record %d: app-limited label without AppLimited time", i)
		}
		if r.TruthLabel == LabelRWndLimited && r.FinalSnapshot().RWndLimited == 0 {
			t.Fatalf("record %d: rwnd-limited label without RWndLimited time", i)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	recs := Generate(GeneratorConfig{Flows: 50, Seed: 5})
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip count = %d", len(got))
	}
	for i := range recs {
		if got[i].ID != recs[i].ID || got[i].TruthLabel != recs[i].TruthLabel ||
			len(got[i].Snapshots) != len(recs[i].Snapshots) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReadJSONLBadInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Error("expected decode error")
	}
	recs, err := ReadJSONL(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Errorf("empty input: %v, %d records", err, len(recs))
	}
}

func TestAnalyzeCategorization(t *testing.T) {
	recs := Generate(GeneratorConfig{Flows: 2000, Seed: 6})
	an := Analyze(recs, AnalysisConfig{})
	if an.Total != 2000 {
		t.Fatalf("total = %d", an.Total)
	}
	// Every flow is categorized exactly once.
	var sum int
	for _, c := range CategoryOrder() {
		sum += an.ByCat[c]
	}
	if sum != 2000 {
		t.Errorf("category sum = %d", sum)
	}
	// The pipeline's exclusions follow the observable fields: all
	// cellular-access candidates must have been excluded before the
	// change-point stage.
	for _, r := range an.Results {
		if r.Category == CatStable || r.Category == CatLevelShift {
			if r.Truth == LabelAppLimited || r.Truth == LabelRWndLimited {
				t.Errorf("flow %s (%s) reached the change-point stage", r.ID, r.Truth)
			}
		}
	}
}

func TestAnalyzeDetectsContendingFlows(t *testing.T) {
	recs := Generate(GeneratorConfig{Flows: 3000, Seed: 7})
	an := Analyze(recs, AnalysisConfig{})
	v := an.Validate()
	if v.Recall() < 0.7 {
		t.Errorf("recall = %.3f, want >= 0.7 (tp=%d fn=%d)", v.Recall(), v.TruePos, v.FalseNeg)
	}
	if v.Precision() < 0.8 {
		t.Errorf("precision = %.3f (fp=%d)", v.Precision(), v.FalsePos)
	}
	// Steady flows rarely misclassified.
	if an.ByCat[CatLevelShift] == 0 {
		t.Error("no level shifts found at all")
	}
}

func TestAnalyzeDetectors(t *testing.T) {
	recs := Generate(GeneratorConfig{Flows: 800, Seed: 8})
	for _, det := range []string{"pelt", "binseg", "window"} {
		an := Analyze(recs, AnalysisConfig{Detector: det})
		v := an.Validate()
		if v.Recall() < 0.5 {
			t.Errorf("%s: recall = %.3f", det, v.Recall())
		}
	}
}

func TestAnalysisReport(t *testing.T) {
	recs := Generate(GeneratorConfig{Flows: 300, Seed: 9})
	an := Analyze(recs, AnalysisConfig{})
	var buf bytes.Buffer
	an.WriteReport(&buf)
	out := buf.String()
	for _, want := range []string{"app-limited", "rwnd-limited", "cellular", "level-shift", "candidate"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestValidationMetrics(t *testing.T) {
	v := Validation{TruePos: 8, FalsePos: 2, FalseNeg: 2, TrueNeg: 88}
	if v.Precision() != 0.8 {
		t.Errorf("precision = %v", v.Precision())
	}
	if v.Recall() != 0.8 {
		t.Errorf("recall = %v", v.Recall())
	}
	var zero Validation
	if zero.Precision() != 0 || zero.Recall() != 0 {
		t.Error("empty validation should be 0")
	}
}

func TestSnapshotFractions(t *testing.T) {
	recs := Generate(GeneratorConfig{Flows: 100, Seed: 10})
	for i := range recs {
		s := recs[i].FinalSnapshot()
		if f := s.AppLimitedFraction(); f < 0 || f > 1.01 {
			t.Errorf("app-limited fraction out of range: %v", f)
		}
	}
}

func TestSortResultsByID(t *testing.T) {
	rs := []FlowResult{{ID: "b"}, {ID: "a"}, {ID: "c"}}
	SortResultsByID(rs)
	if rs[0].ID != "a" || rs[2].ID != "c" {
		t.Errorf("sorted = %v", rs)
	}
}
