package mlab

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"time"

	"repro/internal/faults"
	"repro/internal/tcpinfo"
)

// Mixture sets the fraction of flows generated with each ground-truth
// label. Fractions are normalized; zero values are allowed.
type Mixture struct {
	AppLimited  float64
	RWndLimited float64
	Cellular    float64
	Steady      float64
	Contending  float64
	Policed     float64
	Short       float64
}

// DefaultMixture reflects the qualitative composition the paper's
// §2.2 surveys describe: most flows short or application-limited
// (Araújo et al.: <40% of traffic is neither application-, host-, nor
// receiver-limited), a substantial receiver-limited share, cellular
// clients excluded by the analysis, and minorities of steady,
// contending, and policed bulk flows.
func DefaultMixture() Mixture {
	return Mixture{
		AppLimited:  0.30,
		RWndLimited: 0.13,
		Cellular:    0.15,
		Steady:      0.17,
		Contending:  0.07,
		Policed:     0.04,
		Short:       0.14,
	}
}

func (m Mixture) normalized() Mixture {
	total := m.AppLimited + m.RWndLimited + m.Cellular + m.Steady + m.Contending + m.Policed + m.Short
	if total <= 0 {
		return DefaultMixture()
	}
	m.AppLimited /= total
	m.RWndLimited /= total
	m.Cellular /= total
	m.Steady /= total
	m.Contending /= total
	m.Policed /= total
	m.Short /= total
	return m
}

// GeneratorConfig parameterizes the synthetic NDT dataset.
type GeneratorConfig struct {
	// Flows is the number of records to generate (the paper's June
	// 2023 query returned 9,984).
	Flows int
	// Mix is the label mixture (default DefaultMixture).
	Mix Mixture
	// SnapshotInterval spaces the TCP_INFO snapshots (default 100ms).
	SnapshotInterval time.Duration
	// TestDuration is the nominal NDT test length (default 10s, the
	// NDT7 standard).
	TestDuration time.Duration
	// BaseTime stamps the records (defaults to 2023-06-01, the paper's
	// measurement month).
	BaseTime time.Time
	// Seed drives all randomness.
	Seed int64
	// ShardSize switches the generator to sharded seeding: every
	// ShardSize-record shard draws from its own rand stream derived via
	// faults.DeriveSeed(Seed, "mlab/shard/<k>"), so shards can be
	// generated on any number of workers — or resumed anywhere — with
	// byte-identical output. 0 (the default) keeps the historical
	// single-stream sequence, which is inherently sequential.
	ShardSize int `json:"shard_size,omitempty"`
}

func (c GeneratorConfig) norm() GeneratorConfig {
	if c.Flows <= 0 {
		c.Flows = 9984
	}
	if c.SnapshotInterval <= 0 {
		c.SnapshotInterval = 100 * time.Millisecond
	}
	if c.TestDuration <= 0 {
		c.TestDuration = 10 * time.Second
	}
	if c.BaseTime.IsZero() {
		c.BaseTime = time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)
	}
	z := Mixture{}
	if c.Mix == z {
		c.Mix = DefaultMixture()
	} else {
		c.Mix = c.Mix.normalized()
	}
	return c
}

// Generate produces a synthetic NDT dataset in memory. Large datasets
// should stream through GenSource (or GenerateJSONL) instead.
func Generate(cfg GeneratorConfig) []Record {
	src := NewGenSource(cfg)
	recs := make([]Record, src.cfg.Flows)
	for i := range recs {
		if err := src.Next(&recs[i]); err != nil {
			// A generator source only ever returns io.EOF, and only
			// after cfg.Flows records.
			panic(err)
		}
	}
	return recs
}

// GenSource streams the synthetic dataset one record at a time — the
// generator half of the constant-memory passive pipeline. It
// implements RecordSource, reusing the caller's record storage, so
// generating N flows holds one flow in memory at a time.
type GenSource struct {
	cfg   GeneratorConfig
	rng   *rand.Rand
	i     int
	limit int
	trace []float64
}

// NewGenSource returns a source for cfg's full dataset.
func NewGenSource(cfg GeneratorConfig) *GenSource {
	cfg = cfg.norm()
	g := &GenSource{cfg: cfg, limit: cfg.Flows}
	if cfg.ShardSize <= 0 {
		g.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	return g
}

// newShardSource returns a source restricted to records [start, end)
// of cfg's dataset. cfg must be normalized and sharded, and start must
// sit on a shard boundary.
func newShardSource(cfg GeneratorConfig, start, end int) *GenSource {
	return &GenSource{cfg: cfg, i: start, limit: end}
}

// shardSeed derives shard k's independent random stream.
func shardSeed(base int64, k int) int64 {
	return faults.DeriveSeed(base, "mlab/shard/"+strconv.Itoa(k))
}

// Next generates the next record into rec, reusing its snapshot
// storage, and returns io.EOF once the configured flow count has been
// produced.
func (g *GenSource) Next(rec *Record) error {
	if g.i >= g.limit {
		return io.EOF
	}
	if g.cfg.ShardSize > 0 && (g.rng == nil || g.i%g.cfg.ShardSize == 0) {
		g.rng = rand.New(rand.NewSource(shardSeed(g.cfg.Seed, g.i/g.cfg.ShardSize)))
	}
	label := drawLabel(g.rng, g.cfg.Mix)
	synthesizeInto(g.rng, g.cfg, g.i, label, rec, &g.trace)
	g.i++
	return nil
}

func drawLabel(rng *rand.Rand, m Mixture) Label {
	u := rng.Float64()
	for _, e := range []struct {
		p float64
		l Label
	}{
		{m.AppLimited, LabelAppLimited},
		{m.RWndLimited, LabelRWndLimited},
		{m.Cellular, LabelCellular},
		{m.Steady, LabelSteady},
		{m.Contending, LabelContending},
		{m.Policed, LabelPoliced},
		{m.Short, LabelShort},
	} {
		if u < e.p {
			return e.l
		}
		u -= e.p
	}
	return LabelSteady
}

// accessRate draws a plausible broadband access rate in bits/s
// (log-uniform between 10 and 940 Mbit/s for wired/wifi).
func accessRate(rng *rand.Rand) float64 {
	lo, hi := math.Log(10e6), math.Log(940e6)
	return math.Exp(lo + rng.Float64()*(hi-lo))
}

// noise returns a multiplicative noise factor at the given level.
func noise(rng *rand.Rand, level float64) float64 { return 1 + level*rng.NormFloat64() }

// contendingLevels are the share levels a contending flow cycles
// through as competitors arrive and leave.
var contendingLevels = [...]float64{0.9, 0.45, 0.3, 0.6, 0.9}

// growTrace returns a length-n slice backed by buf's array.
func growTrace(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growSnaps returns a length-n snapshot slice reusing s's array.
func growSnaps(s []tcpinfo.Snapshot, n int) []tcpinfo.Snapshot {
	if cap(s) < n {
		return make([]tcpinfo.Snapshot, n)
	}
	return s[:n]
}

// synthesizeInto generates one flow into rec, reusing rec's snapshot
// storage and the caller's trace buffer: after warmup the only
// steady-state allocation per record is its ID string. The rand draw
// sequence is identical to the original record-at-a-time generator,
// so datasets are byte-for-byte stable across refactors.
func synthesizeInto(rng *rand.Rand, cfg GeneratorConfig, idx int, label Label, rec *Record, traceBuf *[]float64) {
	interval := cfg.SnapshotInterval
	dur := cfg.TestDuration
	access := AccessWifi
	if rng.Float64() < 0.35 {
		access = AccessEthernet
	}

	cap := accessRate(rng)

	var trace []float64
	var appLimFrac, rwndLimFrac float64

	switch label {
	case LabelShort:
		dur = time.Duration((0.2 + 0.8*rng.Float64()) * float64(time.Second))
		n := int(dur / interval)
		if n < 2 {
			n = 2
		}
		trace = growTrace(traceBuf, n)
		// A burst that fits the initial window: brief spike then done.
		trace[0] = cap * (0.3 + 0.4*rng.Float64())
		for i := 1; i < n; i++ {
			trace[i] = trace[0] * math.Exp(-float64(i)/2) * noise(rng, 0.1)
		}
		appLimFrac = 0.8

	case LabelAppLimited:
		// Video-like: on-off chunk fetches bounded well below capacity.
		bitrate := cap * (0.05 + 0.25*rng.Float64())
		n := int(dur / interval)
		trace = growTrace(traceBuf, n)
		period := 4 + rng.Intn(16) // chunk period in snapshots
		duty := 0.3 + 0.4*rng.Float64()
		for i := range trace {
			if float64(i%period) < duty*float64(period) {
				trace[i] = bitrate / duty * noise(rng, 0.15)
			} else {
				trace[i] = bitrate * 0.05 * noise(rng, 0.3)
			}
			if trace[i] < 0 {
				trace[i] = 0
			}
		}
		appLimFrac = 0.5 + 0.45*rng.Float64()

	case LabelRWndLimited:
		// Clamped by the receiver's window: flat, below capacity.
		lvl := cap * (0.1 + 0.3*rng.Float64())
		n := int(dur / interval)
		trace = growTrace(traceBuf, n)
		for i := range trace {
			trace[i] = lvl * noise(rng, 0.03)
		}
		rwndLimFrac = 0.6 + 0.35*rng.Float64()

	case LabelCellular:
		access = AccessCellular
		// Fading radio: smooth random walk between 20% and 100% of a
		// cellular-range capacity.
		cap = math.Exp(math.Log(5e6) + rng.Float64()*(math.Log(300e6)-math.Log(5e6)))
		n := int(dur / interval)
		trace = growTrace(traceBuf, n)
		level := 0.6
		for i := range trace {
			level += 0.08 * rng.NormFloat64()
			if level < 0.2 {
				level = 0.2
			}
			if level > 1 {
				level = 1
			}
			trace[i] = cap * level * noise(rng, 0.1)
		}

	case LabelSteady:
		// Bulk flow with a stable allocation near capacity.
		lvl := cap * (0.85 + 0.1*rng.Float64())
		n := int(dur / interval)
		trace = growTrace(traceBuf, n)
		for i := range trace {
			trace[i] = lvl * noise(rng, 0.05)
		}

	case LabelContending:
		// Bulk flow whose share shifts when competitors arrive/leave:
		// 1-3 level changes across the test.
		n := int(dur / interval)
		trace = growTrace(traceBuf, n)
		shifts := 1 + rng.Intn(3)
		var bpsArr [3]int
		bps := bpsArr[:shifts]
		for i := range bps {
			bps[i] = n/4 + rng.Intn(n/2)
		}
		li := rng.Intn(2)
		cur := contendingLevels[li]
		k := 0
		for i := range trace {
			for k < len(bps) && i == bps[k] {
				li = (li + 1 + rng.Intn(len(contendingLevels)-1)) % len(contendingLevels)
				cur = contendingLevels[li]
				k++
			}
			trace[i] = cap * cur * noise(rng, 0.06)
		}

	case LabelPoliced:
		// Flach et al.'s policing signature: full rate while the token
		// bucket drains, then a hard clamp with loss.
		policedRate := cap * (0.1 + 0.2*rng.Float64())
		n := int(dur / interval)
		trace = growTrace(traceBuf, n)
		burst := n / 6
		for i := range trace {
			if i < burst {
				trace[i] = cap * 0.9 * noise(rng, 0.05)
			} else {
				trace[i] = policedRate * noise(rng, 0.08)
			}
		}
	}

	n := len(trace)
	rec.Snapshots = growSnaps(rec.Snapshots, n)
	snaps := rec.Snapshots
	var bytes float64
	var mean float64
	for i := range trace {
		if trace[i] < 0 {
			trace[i] = 0
		}
		bytes += trace[i] / 8 * interval.Seconds()
		at := time.Duration(i+1) * interval
		// Every field is assigned, so reused snapshot storage is safe.
		snaps[i] = tcpinfo.Snapshot{
			At:            at,
			BytesAcked:    int64(bytes),
			BytesSent:     int64(bytes * 1.01),
			ThroughputBps: trace[i],
			SRTT:          time.Duration((20 + 40*rng.Float64()) * float64(time.Millisecond)),
			MinRTT:        15 * time.Millisecond,
			AppLimited:    time.Duration(appLimFrac * float64(at)),
			RWndLimited:   time.Duration(rwndLimFrac * float64(at)),
			BusyTime:      time.Duration((1 - appLimFrac - rwndLimFrac) * float64(at)),
		}
		mean += trace[i]
	}
	if n > 0 {
		mean /= float64(n)
	}
	rec.ID = fmt.Sprintf("ndt-%06d", idx)
	rec.Start = cfg.BaseTime.Add(time.Duration(idx) * time.Minute)
	rec.Duration = time.Duration(n) * interval
	rec.Access = access
	rec.MeanThroughputBps = mean
	rec.TruthLabel = label
}
