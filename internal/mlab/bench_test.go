package mlab

import (
	"io"
	"runtime"
	"sync"
	"testing"
)

const benchFlows = 2000

var benchDataset = sync.OnceValue(func() []Record {
	return Generate(GeneratorConfig{Flows: benchFlows, Seed: 1})
})

func benchAnalyze(b *testing.B, workers int) {
	recs := benchDataset()
	cfg := AnalysisConfig{}
	b.ReportAllocs()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := AnalyzeStream(&SliceSource{Recs: recs}, cfg, StreamOptions{Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if a.Total != benchFlows {
			b.Fatalf("analyzed %d flows, want %d", a.Total, benchFlows)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	allocsPerFlow := float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N) / benchFlows
	b.ReportMetric(allocsPerFlow, "allocs/flow")
}

// BenchmarkMLabAnalyzeSeq is the single-worker streaming pipeline:
// the per-flow cost the parallel version divides across cores, and
// the source of the allocs/flow figure (steady-state analysis is
// zero-alloc per flow; the residue is fixed per-run setup).
func BenchmarkMLabAnalyzeSeq(b *testing.B) { benchAnalyze(b, 1) }

// BenchmarkMLabAnalyzePar8 is the 8-worker pipeline; on a machine
// with >= 8 cores it must be >= 4x BenchmarkMLabAnalyzeSeq.
func BenchmarkMLabAnalyzePar8(b *testing.B) { benchAnalyze(b, 8) }

// BenchmarkMLabAnalyzeStoreAll is the historical store-everything
// path (per-flow results + exact CDF), kept as the memory/alloc
// comparison point for the streaming aggregate mode.
func BenchmarkMLabAnalyzeStoreAll(b *testing.B) {
	recs := benchDataset()
	cfg := AnalysisConfig{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := Analyze(recs, cfg)
		if a.Total != benchFlows {
			b.Fatalf("analyzed %d flows, want %d", a.Total, benchFlows)
		}
	}
}

// BenchmarkMLabGenerate streams record generation (the GenSource path
// both Generate and GenerateJSONL run on), one reused record at a
// time.
func BenchmarkMLabGenerate(b *testing.B) {
	cfg := GeneratorConfig{Flows: benchFlows, Seed: 1}
	b.ReportAllocs()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := NewGenSource(cfg)
		var rec Record
		n := 0
		for {
			if err := src.Next(&rec); err != nil {
				if err != io.EOF {
					b.Fatal(err)
				}
				break
			}
			n++
		}
		if n != benchFlows {
			b.Fatalf("generated %d flows, want %d", n, benchFlows)
		}
	}
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	b.ReportMetric(float64(ms1.Mallocs-ms0.Mallocs)/float64(b.N)/benchFlows, "allocs/flow")
}
