package mlab

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
)

// RecordSource yields NDT records one at a time. Next decodes (or
// generates) the next record into rec, reusing rec's backing storage
// where possible, and returns io.EOF at the end of the stream. The
// record passed to Next is owned by the caller until the same rec is
// passed again; sources must not retain it.
type RecordSource interface {
	Next(rec *Record) error
}

// Default guards for untrusted datasets. A real NDT record is a few
// hundred snapshots; 16 MiB of JSON per record is already two orders
// of magnitude past anything plausible.
const (
	DefaultMaxRecordBytes = 16 << 20
)

// StreamLimits guards a stream against pathological inputs.
type StreamLimits struct {
	// MaxRecordBytes caps one JSONL line (default DefaultMaxRecordBytes;
	// negative disables the cap).
	MaxRecordBytes int
	// MaxRecords caps the record count (0 or negative = unlimited).
	MaxRecords int
}

func (l StreamLimits) norm() StreamLimits {
	if l.MaxRecordBytes == 0 {
		l.MaxRecordBytes = DefaultMaxRecordBytes
	}
	return l
}

var gzipMagic = []byte{0x1f, 0x8b}

// RecordStream decodes a JSONL dataset incrementally: one record in
// memory at a time, with per-record buffer reuse, transparent gzip
// autodetection (for .jsonl.gz datasets), and input guards. It is the
// constant-memory replacement for ReadJSONL.
type RecordStream struct {
	br     *bufio.Reader
	gz     *gzip.Reader
	lim    StreamLimits
	n      int
	line   []byte
	failed bool
}

// NewRecordStream wraps r. The first bytes are sniffed for the gzip
// magic, so callers can hand over either plain or gzipped JSONL
// without declaring which.
func NewRecordStream(r io.Reader, lim StreamLimits) (*RecordStream, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	head, err := br.Peek(2)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("mlab: reading stream head: %w", err)
	}
	s := &RecordStream{br: br, lim: lim.norm()}
	if bytes.Equal(head, gzipMagic) {
		gz, err := gzip.NewReader(br)
		if err != nil {
			return nil, fmt.Errorf("mlab: opening gzip stream: %w", err)
		}
		s.gz = gz
		s.br = bufio.NewReaderSize(gz, 1<<16)
	}
	return s, nil
}

// Count returns the number of records decoded so far.
func (s *RecordStream) Count() int { return s.n }

// Close releases the gzip decoder, if any. The underlying reader is
// the caller's to close.
func (s *RecordStream) Close() error {
	if s.gz != nil {
		return s.gz.Close()
	}
	return nil
}

// Next decodes the next record into rec, reusing rec's snapshot
// storage. It returns io.EOF at a clean end of input; any other error
// (malformed JSON, a truncated final record, an oversized line, or a
// record-count limit) is terminal and carries the failing record's
// index.
func (s *RecordStream) Next(rec *Record) error {
	if s.failed {
		return fmt.Errorf("mlab: stream already failed at record %d", s.n)
	}
	line, err := s.nextLine()
	if err != nil {
		if err != io.EOF {
			s.failed = true
		}
		return err
	}
	if s.lim.MaxRecords > 0 && s.n >= s.lim.MaxRecords {
		s.failed = true
		return fmt.Errorf("mlab: record %d exceeds the %d-record limit", s.n, s.lim.MaxRecords)
	}
	rec.reset()
	if err := json.Unmarshal(line, rec); err != nil {
		s.failed = true
		return fmt.Errorf("mlab: decoding record %d: %w", s.n, err)
	}
	s.n++
	return nil
}

// nextLine returns the next non-blank line (without the newline),
// buffered in s.line. io.EOF means a clean end of input.
func (s *RecordStream) nextLine() ([]byte, error) {
	for {
		s.line = s.line[:0]
		for {
			chunk, err := s.br.ReadSlice('\n')
			s.line = append(s.line, chunk...)
			if s.lim.MaxRecordBytes > 0 && len(s.line) > s.lim.MaxRecordBytes {
				return nil, fmt.Errorf("mlab: record %d exceeds the %d-byte line limit", s.n, s.lim.MaxRecordBytes)
			}
			if err == nil || err == io.EOF {
				break
			}
			if err != bufio.ErrBufferFull {
				return nil, fmt.Errorf("mlab: reading record %d: %w", s.n, err)
			}
		}
		trimmed := bytes.TrimSpace(s.line)
		if len(trimmed) > 0 {
			return trimmed, nil
		}
		if len(s.line) == 0 {
			// ReadSlice returned no data: clean EOF.
			return nil, io.EOF
		}
		// Blank line (or trailing newline at EOF): skip and continue.
		if !bytes.HasSuffix(s.line, []byte("\n")) {
			return nil, io.EOF
		}
	}
}

// reset clears rec for reuse, retaining the snapshot backing array so
// steady-state decoding does not reallocate it.
func (r *Record) reset() {
	snaps := r.Snapshots[:0]
	*r = Record{Snapshots: snaps}
}

// SliceSource adapts an in-memory dataset to the RecordSource
// interface. Records share the slice's snapshot storage (read-only).
type SliceSource struct {
	Recs []Record
	i    int
}

// Next copies the next record header into rec (snapshots are shared,
// not copied) or returns io.EOF.
func (s *SliceSource) Next(rec *Record) error {
	if s.i >= len(s.Recs) {
		return io.EOF
	}
	*rec = s.Recs[s.i]
	s.i++
	return nil
}

// JSONLWriter encodes records one per line with optional gzip
// compression, buffering the underlying writer. It is the streaming
// counterpart of WriteJSONL.
type JSONLWriter struct {
	bw  *bufio.Writer
	gz  *gzip.Writer
	enc *json.Encoder
	n   int
}

// NewJSONLWriter wraps w; when compress is set the output is gzipped.
func NewJSONLWriter(w io.Writer, compress bool) *JSONLWriter {
	jw := &JSONLWriter{bw: bufio.NewWriterSize(w, 1<<16)}
	if compress {
		jw.gz = gzip.NewWriter(jw.bw)
		jw.enc = json.NewEncoder(jw.gz)
	} else {
		jw.enc = json.NewEncoder(jw.bw)
	}
	return jw
}

// Write encodes one record.
func (jw *JSONLWriter) Write(rec *Record) error {
	if err := jw.enc.Encode(rec); err != nil {
		return fmt.Errorf("mlab: encoding record %d: %w", jw.n, err)
	}
	jw.n++
	return nil
}

// WriteRaw copies pre-encoded JSONL bytes through (the parallel
// generator encodes shards off the writer goroutine).
func (jw *JSONLWriter) WriteRaw(b []byte, records int) error {
	if jw.gz != nil {
		if _, err := jw.gz.Write(b); err != nil {
			return fmt.Errorf("mlab: writing record %d: %w", jw.n, err)
		}
	} else if _, err := jw.bw.Write(b); err != nil {
		return fmt.Errorf("mlab: writing record %d: %w", jw.n, err)
	}
	jw.n += records
	return nil
}

// Count returns the number of records written.
func (jw *JSONLWriter) Count() int { return jw.n }

// Close flushes all layers. It must be called for the output to be
// complete; the underlying writer is the caller's to close.
func (jw *JSONLWriter) Close() error {
	if jw.gz != nil {
		if err := jw.gz.Close(); err != nil {
			return fmt.Errorf("mlab: closing gzip stream: %w", err)
		}
	}
	if err := jw.bw.Flush(); err != nil {
		return fmt.Errorf("mlab: flushing output: %w", err)
	}
	return nil
}
