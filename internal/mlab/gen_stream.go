package mlab

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// GenStats summarizes a generated dataset.
type GenStats struct {
	// Records is the number of records written.
	Records int
	// ByLabel counts records per ground-truth label.
	ByLabel map[Label]int
}

func (s *GenStats) count(l Label) {
	s.Records++
	s.ByLabel[l]++
}

func (s *GenStats) merge(o GenStats) {
	s.Records += o.Records
	for l, n := range o.ByLabel {
		s.ByLabel[l] += n
	}
}

// GenerateJSONL streams cfg's synthetic dataset to w as JSONL
// (gzipped when compress is set) without ever materializing it: one
// record is in memory per worker. With cfg.ShardSize > 0 the shards
// are generated and JSON-encoded on `workers` goroutines and written
// back in shard order, so the bytes are identical for every worker
// count; otherwise (or with workers <= 1) generation is sequential
// and byte-identical to Generate + WriteJSONL.
func GenerateJSONL(w io.Writer, cfg GeneratorConfig, workers int, compress bool) (GenStats, error) {
	cfg = cfg.norm()
	stats := GenStats{ByLabel: make(map[Label]int)}
	jw := NewJSONLWriter(w, compress)
	if cfg.ShardSize <= 0 || workers <= 1 {
		src := NewGenSource(cfg)
		var rec Record
		for {
			if err := src.Next(&rec); err != nil {
				if err != io.EOF {
					return stats, err
				}
				break
			}
			if err := jw.Write(&rec); err != nil {
				return stats, err
			}
			stats.count(rec.TruthLabel)
		}
		return stats, jw.Close()
	}
	if err := generateSharded(jw, cfg, workers, &stats); err != nil {
		return stats, err
	}
	return stats, jw.Close()
}

// encShard is one shard's generated records, pre-encoded off the
// writer goroutine.
type encShard struct {
	idx   int
	buf   *bytes.Buffer
	stats GenStats
	err   error
}

func generateSharded(jw *JSONLWriter, cfg GeneratorConfig, workers int, stats *GenStats) error {
	nShards := (cfg.Flows + cfg.ShardSize - 1) / cfg.ShardSize
	if workers > nShards {
		workers = nShards
	}
	// inflight bounds encoded-but-unwritten shards (including any the
	// reordering writer is holding), keeping memory at
	// O(workers x shard bytes) regardless of dataset size.
	inflight := workers * 2
	sem := make(chan struct{}, inflight)
	jobs := make(chan int)
	out := make(chan encShard, inflight)
	pool := &sync.Pool{New: func() any { return new(bytes.Buffer) }}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var rec Record
			for idx := range jobs {
				out <- encodeShard(cfg, idx, &rec, pool)
			}
		}()
	}
	go func() {
		// Tokens are taken in shard order, so the shards holding them
		// are always a contiguous prefix of the unwritten ones — the
		// in-order writer below can never be starved of its next shard
		// by later ones exhausting the window.
		for idx := 0; idx < nShards; idx++ {
			sem <- struct{}{}
			jobs <- idx
		}
		close(jobs)
		wg.Wait()
		close(out)
	}()

	// Write shards back in order; out-of-order arrivals wait in
	// pending (bounded by inflight).
	pending := make(map[int]encShard, inflight)
	next := 0
	var firstErr error
	for sh := range out {
		pending[sh.idx] = sh
		for {
			sh, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if firstErr == nil {
				firstErr = sh.err
			}
			if firstErr == nil {
				if err := jw.WriteRaw(sh.buf.Bytes(), sh.stats.Records); err != nil {
					firstErr = err
				} else {
					stats.merge(sh.stats)
				}
			}
			sh.buf.Reset()
			pool.Put(sh.buf)
			<-sem
		}
	}
	return firstErr
}

// encodeShard generates shard idx and JSON-encodes it into a pooled
// buffer, reusing rec's storage across records.
func encodeShard(cfg GeneratorConfig, idx int, rec *Record, pool *sync.Pool) encShard {
	start := idx * cfg.ShardSize
	end := start + cfg.ShardSize
	if end > cfg.Flows {
		end = cfg.Flows
	}
	sh := encShard{
		idx:   idx,
		buf:   pool.Get().(*bytes.Buffer),
		stats: GenStats{ByLabel: make(map[Label]int)},
	}
	src := newShardSource(cfg, start, end)
	enc := json.NewEncoder(sh.buf)
	for {
		if err := src.Next(rec); err != nil {
			if err != io.EOF {
				sh.err = err
			}
			return sh
		}
		if err := enc.Encode(rec); err != nil {
			sh.err = fmt.Errorf("mlab: encoding record %d: %w", start+sh.stats.Records, err)
			return sh
		}
		sh.stats.count(rec.TruthLabel)
	}
}
