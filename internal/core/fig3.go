package core

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"repro/internal/cca"
	"repro/internal/faults"
	"repro/internal/nimbus"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/transport"
)

// Fig3Config parameterizes the elasticity proof-of-concept (Figure 3):
// a Nimbus probe with mode switching disabled runs continuously on an
// emulated 48 Mbit/s, 100 ms link while five kinds of cross traffic
// take 45-second turns.
type Fig3Config struct {
	// RateBps is the emulated link rate (default 48 Mbit/s).
	RateBps float64
	// OneWayDelay is the propagation delay (default 50ms → 100ms RTT,
	// the paper's Mahimahi setup).
	OneWayDelay time.Duration
	// PhaseDuration is each cross-traffic phase's length (default 45s).
	PhaseDuration time.Duration
	// Phases lists the cross-traffic phases in order (default the
	// paper's five: reno, bbr, video, short flows, cbr).
	Phases []string
	// Nimbus overrides the probe configuration; Mu defaults to
	// RateBps.
	Nimbus nimbus.Config
	// Seed drives workload randomness.
	Seed int64
	// BufferBDP sizes the droptail buffer (default 1).
	BufferBDP float64
	// FaultProfile, when non-empty, names a faults.Profile to impose on
	// the bottleneck (see faults.Names): the probe is measured through
	// an impaired link rather than a clean one. FaultSeed drives the
	// injectors.
	FaultProfile string
	FaultSeed    int64
	// Obs, when non-nil, receives the run's trace events and metric
	// registrations (probe flow, cross flows, link, AQM, faults).
	Obs *obs.Scope `json:"-"`
}

func (c Fig3Config) norm() Fig3Config {
	if c.RateBps <= 0 {
		c.RateBps = 48e6
	}
	if c.OneWayDelay <= 0 {
		c.OneWayDelay = 50 * time.Millisecond
	}
	if c.PhaseDuration <= 0 {
		c.PhaseDuration = 45 * time.Second
	}
	if len(c.Phases) == 0 {
		c.Phases = []string{"reno", "bbr", "video", "short", "cbr"}
	}
	if c.Nimbus.Mu <= 0 {
		c.Nimbus.Mu = c.RateBps
	}
	if c.Nimbus.PulseFreq <= 0 {
		// Nimbus's default pulse frequency (5 Hz) assumes RTTs well
		// under the pulse period; on this 100ms-RTT link the loaded
		// RTT approaches 200ms, so elastic cross traffic cannot
		// complete its control loop within a 5 Hz cycle. 2 Hz keeps
		// the pulse period comfortably above the loaded RTT (the
		// abl-pulse bench sweeps this choice).
		c.Nimbus.PulseFreq = 2
	}
	// TargetQDelay is left zero: the controller adapts the standing
	// queue to 0.4x the observed minRTT (40ms on this link), which
	// absorbs the pulse troughs (trough deficit = A*mu*T/pi ~= 40ms at
	// 2 Hz with A=0.25) and keeps the cross-traffic estimate truthful
	// when the link would otherwise drain.
	if c.BufferBDP <= 0 {
		c.BufferBDP = 1
	}
	return c
}

// Fig3Phase is one phase's outcome.
type Fig3Phase struct {
	Name       string
	Start, End time.Duration
	// MeanEta and MaxEta summarize elasticity values emitted during
	// the phase (excluding a settling margin at the phase start).
	MeanEta float64
	MaxEta  float64
	// Elastic is the majority classification across the phase's
	// windows.
	Elastic bool
	// Windows is the number of elasticity windows observed.
	Windows int
	// CrossTputBps is the cross traffic's achieved throughput.
	CrossTputBps float64
	// ProbeTputBps is the probe's achieved throughput.
	ProbeTputBps float64
}

// Fig3Result is the full proof-of-concept outcome.
type Fig3Result struct {
	Config Fig3Config
	Phases []Fig3Phase
	// Eta is the complete elasticity time series.
	Eta []stats.Sample
}

// RunFig3 executes the Figure 3 experiment in a single continuous
// simulation: the probe flow runs throughout; cross traffic starts and
// stops at phase boundaries.
func RunFig3(cfg Fig3Config) (*Fig3Result, error) {
	cfg = cfg.norm()
	cfg.Obs = fallbackScope(cfg.Obs)
	spec := LinkSpec{
		RateBps:     cfg.RateBps,
		OneWayDelay: cfg.OneWayDelay,
		Queue:       QueueDropTail,
		BufferBDP:   cfg.BufferBDP,
		FaultSeed:   cfg.FaultSeed,
		Obs:         cfg.Obs,
	}
	if cfg.FaultProfile != "" {
		p, err := faults.Lookup(cfg.FaultProfile)
		if err != nil {
			return nil, fmt.Errorf("core: fig3: %w", err)
		}
		spec.Faults = &p
	}
	d := NewDumbbell(spec)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	probeCC := nimbus.NewCCA(cfg.Nimbus)
	probe := d.AddBulk(1, 1, probeCC)

	// Schedule the cross-traffic phases. Flow IDs from 100 upward;
	// short flows from 1000 upward.
	type phaseBounds struct {
		name       string
		start, end time.Duration
		cross      func(from, to time.Duration) float64 // achieved bits/s
	}
	var phases []phaseBounds
	settle := 5 * time.Second // ignore elasticity windows straddling a transition

	for i, name := range cfg.Phases {
		start := time.Duration(i) * cfg.PhaseDuration
		end := start + cfg.PhaseDuration
		pb := phaseBounds{name: name, start: start, end: end}
		switch name {
		case "reno", "bbr", "cubic", "newreno", "copa", "vegas":
			// Construct the controller now, while errors can still be
			// returned: by the time the scheduled closure runs, the only
			// way out would be a panic mid-simulation.
			cc, err := cca.New(name)
			if err != nil {
				return nil, fmt.Errorf("core: fig3 phase %q: %w", name, err)
			}
			var f *transport.Flow
			d.Eng.ScheduleAt(start, func() {
				fc := d.FlowConfig(100+i, 1, cc)
				fc.Backlogged = true
				f = transport.NewFlow(d.Eng, fc)
				f.Start()
			})
			d.Eng.ScheduleAt(end, func() {
				if f != nil {
					f.Sender.SetBacklogged(false)
				}
			})
			pb.cross = func(from, to time.Duration) float64 {
				if f == nil {
					return 0
				}
				return f.Throughput(from, to)
			}
		case "video":
			var v *traffic.Video
			d.Eng.ScheduleAt(start, func() {
				v = traffic.NewVideo(d.Eng, d.FlowConfig(100+i, 1, cca.NewCubicCC()), traffic.VideoConfig{})
			})
			d.Eng.ScheduleAt(end, func() {
				if v != nil {
					v.Stop()
					v.Flow.Sender.SetBacklogged(false)
				}
			})
			pb.cross = func(from, to time.Duration) float64 {
				if v == nil {
					return 0
				}
				return v.Flow.Throughput(from, to)
			}
		case "short":
			var g *traffic.ShortFlows
			var acked func() int64
			d.Eng.ScheduleAt(start, func() {
				g = traffic.NewShortFlows(d.Eng, traffic.ShortFlowsConfig{
					ArrivalRate: 6,
					Path:        d.FlowConfig(0, 0, nil).Path,
					ReturnDelay: d.Spec.OneWayDelay,
					UserID:      1,
					NewCC:       func() transport.CCA { return cca.NewRenoCC() },
					BaseFlowID:  1000 + 1000*i,
					Rand:        rng,
				})
				_ = acked
			})
			d.Eng.ScheduleAt(end, func() {
				if g != nil {
					g.Stop()
				}
			})
			gp := &g
			pb.cross = func(from, to time.Duration) float64 {
				if *gp == nil {
					return 0
				}
				return float64((*gp).TotalBytes) * 8 / cfg.PhaseDuration.Seconds()
			}
		case "cbr":
			var f *transport.Flow
			d.Eng.ScheduleAt(start, func() {
				fc := d.FlowConfig(100+i, 1, cca.NewCBR(0.4*cfg.RateBps))
				fc.Backlogged = true
				f = transport.NewFlow(d.Eng, fc)
				f.Start()
			})
			d.Eng.ScheduleAt(end, func() {
				if f != nil {
					f.Sender.SetBacklogged(false)
				}
			})
			pb.cross = func(from, to time.Duration) float64 {
				if f == nil {
					return 0
				}
				return f.Throughput(from, to)
			}
		case "idle":
			pb.cross = func(from, to time.Duration) float64 { return 0 }
		default:
			return nil, fmt.Errorf("core: unknown fig3 phase %q", name)
		}
		phases = append(phases, pb)
	}

	total := time.Duration(len(cfg.Phases)) * cfg.PhaseDuration
	d.Run(total)

	res := &Fig3Result{Config: cfg, Eta: probeCC.Est.Elasticity.Samples()}
	for _, pb := range phases {
		ph := Fig3Phase{Name: pb.name, Start: pb.start, End: pb.end}
		etas := probeCC.Est.Elasticity.Window(pb.start+settle, pb.end)
		ph.Windows = len(etas)
		if len(etas) > 0 {
			ph.MeanEta = stats.Mean(etas)
			m, _ := stats.Max(etas)
			ph.MaxEta = m
			elasticCount := 0
			for _, e := range etas {
				if e >= probeCC.Est.Config().EtaThreshold {
					elasticCount++
				}
			}
			ph.Elastic = elasticCount*2 > len(etas)
		}
		ph.CrossTputBps = pb.cross(pb.start+settle, pb.end)
		ph.ProbeTputBps = probe.Throughput(pb.start+settle, pb.end)
		res.Phases = append(res.Phases, ph)
	}
	return res, nil
}

// Manifest describes the run for the head of a JSONL run log.
func (c Fig3Config) Manifest() obs.Manifest {
	c = c.norm()
	return obs.Manifest{
		Tool:        "elasticity",
		Seed:        c.Seed,
		FaultSeed:   c.FaultSeed,
		CCA:         "nimbus",
		Profile:     c.FaultProfile,
		RateBps:     c.RateBps,
		RTTSeconds:  (2 * c.OneWayDelay).Seconds(),
		Queue:       string(QueueDropTail),
		BufferBDP:   c.BufferBDP,
		Phases:      c.Phases,
		PulseFreqHz: c.Nimbus.Norm().PulseFreq,
	}
}

// Summary condenses the result into the run log's trailing summary
// line: per-phase mean/max eta and throughputs, keyed by phase name.
func (r *Fig3Result) Summary() obs.Summary {
	m := map[string]float64{"windows_total": float64(len(r.Eta))}
	for _, p := range r.Phases {
		key := strings.ReplaceAll(p.Name, " ", "_")
		m["mean_eta."+key] = p.MeanEta
		m["max_eta."+key] = p.MaxEta
		m["cross_tput_bps."+key] = p.CrossTputBps
		m["probe_tput_bps."+key] = p.ProbeTputBps
	}
	return obs.Summary{Metrics: m}
}

// WriteTable renders the per-phase summary.
func (r *Fig3Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "fig3: Nimbus elasticity probe (mode switching disabled) on a %s, %v-RTT link\n",
		FmtBps(r.Config.RateBps), 2*r.Config.OneWayDelay)
	fmt.Fprintf(w, "%-8s %8s %8s %8s %9s %12s %12s\n",
		"phase", "windows", "mean-eta", "max-eta", "elastic?", "cross-tput", "probe-tput")
	for _, p := range r.Phases {
		fmt.Fprintf(w, "%-8s %8d %8.3f %8.3f %9v %12s %12s\n",
			p.Name, p.Windows, p.MeanEta, p.MaxEta, p.Elastic,
			FmtBps(p.CrossTputBps), FmtBps(p.ProbeTputBps))
	}
}

// WriteSeries renders the elasticity time series (time, eta) rows for
// plotting the figure.
func (r *Fig3Result) WriteSeries(w io.Writer) {
	fmt.Fprintln(w, "# time_s eta")
	for _, s := range r.Eta {
		fmt.Fprintf(w, "%.2f %.4f\n", s.At.Seconds(), s.Value)
	}
}
