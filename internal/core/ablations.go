package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cca"
	"repro/internal/nimbus"
	"repro/internal/obs"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
)

// PulseSweepConfig parameterizes the abl-pulse ablation.
type PulseSweepConfig struct {
	// Freqs lists pulse frequencies in Hz (default 1, 2, 5, 10).
	Freqs []float64
	// Amps lists pulse amplitudes as fractions of mu (default 0.1,
	// 0.25, 0.5).
	Amps []float64
	// Duration is each cell's length (default 30s).
	Duration time.Duration
	// Obs, when non-nil, receives every cell's trace events and metric
	// registrations.
	Obs *obs.Scope `json:"-"`
}

func (c PulseSweepConfig) norm() PulseSweepConfig {
	if len(c.Freqs) == 0 {
		c.Freqs = []float64{1, 2, 5, 10}
	}
	if len(c.Amps) == 0 {
		c.Amps = []float64{0.1, 0.25, 0.5}
	}
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	return c
}

// PulseSweepRow holds one (frequency, amplitude) cell of the pulse
// ablation: elasticity separation between a Reno (elastic) and CBR
// (inelastic) cross-traffic scenario.
type PulseSweepRow struct {
	FreqHz     float64
	Amp        float64
	EtaReno    float64
	EtaCBR     float64
	Separation float64 // EtaReno - EtaCBR: the detector's margin
}

// PulseSweepResult is the full ablation grid.
type PulseSweepResult struct {
	Config PulseSweepConfig
	Rows   []PulseSweepRow
}

// RunPulseSweep runs the abl-pulse ablation: how the pulse frequency
// and amplitude choice affects the probe's ability to separate elastic
// from inelastic cross traffic on the Figure 3 link. It demonstrates
// why the pulse period must exceed the loaded RTT.
func RunPulseSweep(cfg PulseSweepConfig) (*PulseSweepResult, error) {
	cfg = cfg.norm()
	cfg.Obs = fallbackScope(cfg.Obs)
	res := &PulseSweepResult{Config: cfg}
	for _, f := range cfg.Freqs {
		for _, a := range cfg.Amps {
			etaR, err := pulseCell(cfg, f, a, "reno")
			if err != nil {
				return nil, err
			}
			etaC, err := pulseCell(cfg, f, a, "cbr")
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, PulseSweepRow{
				FreqHz: f, Amp: a, EtaReno: etaR, EtaCBR: etaC, Separation: etaR - etaC,
			})
		}
	}
	return res, nil
}

func pulseCell(cfg PulseSweepConfig, freq, amp float64, cross string) (float64, error) {
	const rate = 48e6
	d := NewDumbbell(LinkSpec{
		RateBps: rate, OneWayDelay: 50 * time.Millisecond, BufferBDP: 1, Obs: cfg.Obs,
	})
	probeCC := nimbus.NewCCA(nimbus.Config{
		Mu: rate, PulseFreq: freq, PulseAmp: amp,
	})
	d.AddBulk(1, 1, probeCC)
	var cc transport.CCA
	switch cross {
	case "reno":
		cc = cca.NewRenoCC()
	case "cbr":
		cc = cca.NewCBR(0.4 * rate)
	default:
		return 0, fmt.Errorf("core: unknown pulse-sweep cross %q", cross)
	}
	fc := d.FlowConfig(2, 1, cc)
	fc.Backlogged = true
	f := transport.NewFlow(d.Eng, fc)
	f.Start()
	d.Run(cfg.Duration)
	etas := probeCC.Est.Elasticity.Window(10*time.Second, cfg.Duration)
	if len(etas) == 0 {
		return 0, nil
	}
	return stats.Mean(etas), nil
}

// WriteTable renders the ablation table.
func (r *PulseSweepResult) WriteTable(w io.Writer) {
	fmt.Fprintln(w, "abl-pulse: elasticity separation vs pulse frequency/amplitude (48 Mbit/s, 100ms RTT)")
	fmt.Fprintf(w, "%6s %6s %9s %8s %11s\n", "freq", "amp", "eta-reno", "eta-cbr", "separation")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%5.1fHz %6.2f %9.3f %8.3f %11.3f\n", row.FreqHz, row.Amp, row.EtaReno, row.EtaCBR, row.Separation)
	}
}

// BufferSweepConfig parameterizes the abl-buffer ablation.
type BufferSweepConfig struct {
	// BDPs lists bottleneck buffer depths in bandwidth-delay products
	// (default 0.5, 1, 2, 4).
	BDPs []float64
	// Duration is each cell's length (default 30s).
	Duration time.Duration
	// Obs, when non-nil, receives every cell's trace events and metric
	// registrations.
	Obs *obs.Scope `json:"-"`
}

func (c BufferSweepConfig) norm() BufferSweepConfig {
	if len(c.BDPs) == 0 {
		c.BDPs = []float64{0.5, 1, 2, 4}
	}
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	return c
}

// BufferSweepRow holds one buffer-depth cell of the abl-buffer
// ablation: detector separation vs bottleneck buffer size.
type BufferSweepRow struct {
	BufferBDP  float64
	EtaReno    float64
	EtaCBR     float64
	Separation float64
}

// BufferSweepResult is the full ablation sweep.
type BufferSweepResult struct {
	Config BufferSweepConfig
	Rows   []BufferSweepRow
}

// RunBufferSweep runs the abl-buffer ablation: the probe's pulses
// work the bottleneck queue, so the buffer depth (relative to the
// pulse-induced swing) bounds how much elastic response can register.
// Very shallow buffers clip the oscillation; bufferbloat dilutes it.
func RunBufferSweep(cfg BufferSweepConfig) (*BufferSweepResult, error) {
	cfg = cfg.norm()
	cfg.Obs = fallbackScope(cfg.Obs)
	res := &BufferSweepResult{Config: cfg}
	for _, bdp := range cfg.BDPs {
		etaR, err := bufferCell(cfg, bdp, "reno")
		if err != nil {
			return nil, err
		}
		etaC, err := bufferCell(cfg, bdp, "cbr")
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, BufferSweepRow{
			BufferBDP: bdp, EtaReno: etaR, EtaCBR: etaC, Separation: etaR - etaC,
		})
	}
	return res, nil
}

func bufferCell(cfg BufferSweepConfig, bdp float64, cross string) (float64, error) {
	const rate = 48e6
	d := NewDumbbell(LinkSpec{
		RateBps: rate, OneWayDelay: 50 * time.Millisecond, BufferBDP: bdp, Obs: cfg.Obs,
	})
	probeCC := nimbus.NewCCA(nimbus.Config{Mu: rate, PulseFreq: 2})
	d.AddBulk(1, 1, probeCC)
	var cc transport.CCA
	switch cross {
	case "reno":
		cc = cca.NewRenoCC()
	case "cbr":
		cc = cca.NewCBR(0.4 * rate)
	default:
		return 0, fmt.Errorf("core: unknown buffer-sweep cross %q", cross)
	}
	fc := d.FlowConfig(2, 1, cc)
	fc.Backlogged = true
	f := transport.NewFlow(d.Eng, fc)
	f.Start()
	d.Run(cfg.Duration)
	etas := probeCC.Est.Elasticity.Window(10*time.Second, cfg.Duration)
	if len(etas) == 0 {
		return 0, nil
	}
	return stats.Mean(etas), nil
}

// WriteTable renders the ablation table.
func (r *BufferSweepResult) WriteTable(w io.Writer) {
	fmt.Fprintln(w, "abl-buffer: elasticity separation vs bottleneck buffer depth (48 Mbit/s, 100ms RTT, 2 Hz)")
	fmt.Fprintf(w, "%8s %9s %8s %11s\n", "buffer", "eta-reno", "eta-cbr", "separation")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%5.1fBDP %9.3f %8.3f %11.3f\n", row.BufferBDP, row.EtaReno, row.EtaCBR, row.Separation)
	}
}

// SubPacketConfig parameterizes the abl-subpkt ablation.
type SubPacketConfig struct {
	// Rates lists link rates in bits/s (default 256k, 512k, 1M, 2M).
	Rates []float64
	// Flows is the number of competing Reno flows (default 8).
	Flows int
	// Duration is each cell's length (default 20s).
	Duration time.Duration
	// Obs, when non-nil, receives every cell's trace events and metric
	// registrations.
	Obs *obs.Scope `json:"-"`
}

func (c SubPacketConfig) norm() SubPacketConfig {
	if len(c.Rates) == 0 {
		c.Rates = []float64{256e3, 512e3, 1e6, 2e6}
	}
	if c.Flows <= 0 {
		c.Flows = 8
	}
	if c.Duration <= 0 {
		c.Duration = 20 * time.Second
	}
	return c
}

// SubPacketRow summarizes the abl-subpkt ablation at one link rate:
// N Reno flows on a sub-packet-BDP link (Chen et al., SIGMETRICS '11 —
// the paper's §2.3 developing-world discussion).
type SubPacketRow struct {
	RateBps float64
	Flows   int
	// Jain is the fairness index over per-flow throughput in the
	// measurement window.
	Jain float64
	// StarvedFlows counts flows receiving under 10% of their fair
	// share.
	StarvedFlows int
	// Timeouts counts RTO-driven loss events across flows.
	Timeouts int64
}

// SubPacketResult is the full ablation sweep.
type SubPacketResult struct {
	Config SubPacketConfig
	Rows   []SubPacketRow
}

// RunSubPacket runs the sub-packet-regime ablation: low-rate links
// where the per-flow BDP is below one packet produce timeout-driven
// starvation over short timescales.
func RunSubPacket(cfg SubPacketConfig) (*SubPacketResult, error) {
	cfg = cfg.norm()
	cfg.Obs = fallbackScope(cfg.Obs)
	res := &SubPacketResult{Config: cfg}
	for _, rate := range cfg.Rates {
		eng := &sim.Engine{}
		// 200ms one-way: a long, thin path.
		link := sim.NewLink(eng, "thin", rate, 100*time.Millisecond, qdisc.NewDropTail(8*sim.MSS))
		wireEngineObs(cfg.Obs, eng, link)
		var fl []*transport.Flow
		for i := 0; i < cfg.Flows; i++ {
			f := transport.NewFlow(eng, transport.FlowConfig{
				ID: i + 1, UserID: 1, Path: []*sim.Link{link},
				ReturnDelay: 100 * time.Millisecond,
				CC:          cca.NewRenoCC(), Backlogged: true,
				Trace:   cfg.Obs.T(),
				Metrics: cfg.Obs.R(),
			})
			f.Start()
			fl = append(fl, f)
		}
		eng.Run(cfg.Duration)
		var tputs []float64
		var timeouts int64
		starved := 0
		fair := rate / float64(cfg.Flows)
		for _, f := range fl {
			tp := f.Throughput(cfg.Duration/4, cfg.Duration)
			tputs = append(tputs, tp)
			timeouts += f.Sender.LossEvents()
			if tp < 0.1*fair {
				starved++
			}
		}
		res.Rows = append(res.Rows, SubPacketRow{
			RateBps: rate, Flows: cfg.Flows,
			Jain:         stats.JainIndex(tputs),
			StarvedFlows: starved,
			Timeouts:     timeouts,
		})
	}
	return res, nil
}

// WriteTable renders the ablation table.
func (r *SubPacketResult) WriteTable(w io.Writer) {
	fmt.Fprintln(w, "abl-subpkt: N Reno flows on sub-packet-BDP links (400ms RTT)")
	fmt.Fprintf(w, "%12s %6s %7s %9s %9s\n", "link", "flows", "jain", "starved", "timeouts")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%12s %6d %7.3f %9d %9d\n", FmtBps(row.RateBps), row.Flows, row.Jain, row.StarvedFlows, row.Timeouts)
	}
}

// JitterConfig parameterizes the abl-jitter ablation.
type JitterConfig struct {
	// Duration is each cell's length (default 30s).
	Duration time.Duration
	// Obs, when non-nil, receives every cell's trace events and metric
	// registrations.
	Obs *obs.Scope `json:"-"`
}

func (c JitterConfig) norm() JitterConfig {
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	return c
}

// JitterRow summarizes the abl-jitter ablation under one shaping
// configuration: §5.2's observation that flows still contend on
// latency/jitter even when bandwidth is isolated.
type JitterRow struct {
	Shaping string
	// P50, P99 of the smooth flow's per-ack RTT in milliseconds.
	P50Ms, P99Ms float64
	// JitterMs is p99 - p50: the burst-induced delay variation.
	JitterMs float64
}

// JitterResult is the full ablation sweep.
type JitterResult struct {
	Config JitterConfig
	Rows   []JitterRow
}

// RunJitter runs the jitter ablation: a smooth low-rate flow shares a
// token-bucket-shaped queue (and, for comparison, a plain FIFO and a
// fair queue) with a bursty on-off flow; even when average bandwidth
// is protected, token-bucket bursts inflate the smooth flow's delay.
func RunJitter(cfg JitterConfig) (*JitterResult, error) {
	cfg = cfg.norm()
	cfg.Obs = fallbackScope(cfg.Obs)
	res := &JitterResult{Config: cfg}
	for _, mode := range []string{"fifo", "shaper", "fq"} {
		const rate = 20e6
		spec := LinkSpec{RateBps: rate, OneWayDelay: 10 * time.Millisecond, BufferBDP: 4, Obs: cfg.Obs}
		switch mode {
		case "shaper":
			spec.Queue = QueueShaper
			// Shape the aggregate to 10 Mbit/s with a deep burst
			// allowance: the token bucket releases accumulated bursts
			// at line rate.
			spec.ShapeRateBps = 10e6
		case "fq":
			spec.Queue = QueueFQ
		}
		d := NewDumbbell(spec)
		// Smooth flow: low-rate CBR stream (a live-video-like source).
		smoothCfg := d.FlowConfig(1, 1, cca.NewCBR(1e6))
		smoothCfg.Backlogged = true
		smoothCfg.TraceRTT = true
		smooth := transport.NewFlow(d.Eng, smoothCfg)
		smooth.Start()
		// Bursty flow: on-off Cubic bursts.
		burstCfg := d.FlowConfig(2, 2, cca.NewCubicCC())
		trafficOnOff(d, burstCfg)
		d.Run(cfg.Duration)

		rtts := smooth.Sender.RTTs.Window(cfg.Duration/4, cfg.Duration)
		for i := range rtts {
			rtts[i] *= 1000 // ms
		}
		p50, _ := stats.Quantile(rtts, 0.5)
		p99, _ := stats.Quantile(rtts, 0.99)
		res.Rows = append(res.Rows, JitterRow{Shaping: mode, P50Ms: p50, P99Ms: p99, JitterMs: p99 - p50})
	}
	return res, nil
}

func trafficOnOff(d *Dumbbell, cfg transport.FlowConfig) {
	f := transport.NewFlow(d.Eng, cfg)
	on := true
	f.Sender.SetBacklogged(true)
	var flip func()
	flip = func() {
		on = !on
		f.Sender.SetBacklogged(on)
		d.Eng.Schedule(500*time.Millisecond, flip)
	}
	d.Eng.Schedule(500*time.Millisecond, flip)
}

// WriteTable renders the ablation table.
func (r *JitterResult) WriteTable(w io.Writer) {
	fmt.Fprintln(w, "abl-jitter: smooth 1 Mbit/s flow sharing with a bursty flow (§5.2)")
	fmt.Fprintf(w, "%-8s %9s %9s %10s\n", "queue", "p50-rtt", "p99-rtt", "jitter")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s %7.1fms %7.1fms %8.1fms\n", row.Shaping, row.P50Ms, row.P99Ms, row.JitterMs)
	}
}

// wireEngineObs attaches a scope's tracer and registry to an engine
// and its links, for experiments that assemble topologies without
// NewDumbbell.
func wireEngineObs(sc *obs.Scope, eng *sim.Engine, links ...*sim.Link) {
	if sc == nil {
		return
	}
	if sc.R() != nil {
		eng.RegisterMetrics(sc.R(), "")
	}
	for _, l := range links {
		l.Trace = sc.T()
		if sc.R() != nil {
			l.RegisterMetrics(sc.R())
		}
	}
}
