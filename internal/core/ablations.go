package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cca"
	"repro/internal/nimbus"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
)

// PulseSweepResult holds one (frequency, amplitude) cell of the pulse
// ablation: elasticity separation between a Reno (elastic) and CBR
// (inelastic) cross-traffic scenario.
type PulseSweepResult struct {
	FreqHz     float64
	Amp        float64
	EtaReno    float64
	EtaCBR     float64
	Separation float64 // EtaReno - EtaCBR: the detector's margin
}

// RunPulseSweep runs the abl-pulse ablation: how the pulse frequency
// and amplitude choice affects the probe's ability to separate elastic
// from inelastic cross traffic on the Figure 3 link. It demonstrates
// why the pulse period must exceed the loaded RTT.
func RunPulseSweep(freqs, amps []float64, dur time.Duration) ([]PulseSweepResult, error) {
	if len(freqs) == 0 {
		freqs = []float64{1, 2, 5, 10}
	}
	if len(amps) == 0 {
		amps = []float64{0.1, 0.25, 0.5}
	}
	if dur <= 0 {
		dur = 30 * time.Second
	}
	var out []PulseSweepResult
	for _, f := range freqs {
		for _, a := range amps {
			etaR, err := pulseCell(f, a, "reno", dur)
			if err != nil {
				return nil, err
			}
			etaC, err := pulseCell(f, a, "cbr", dur)
			if err != nil {
				return nil, err
			}
			out = append(out, PulseSweepResult{
				FreqHz: f, Amp: a, EtaReno: etaR, EtaCBR: etaC, Separation: etaR - etaC,
			})
		}
	}
	return out, nil
}

func pulseCell(freq, amp float64, cross string, dur time.Duration) (float64, error) {
	const rate = 48e6
	d := NewDumbbell(LinkSpec{RateBps: rate, OneWayDelay: 50 * time.Millisecond, BufferBDP: 1})
	probeCC := nimbus.NewCCA(nimbus.Config{
		Mu: rate, PulseFreq: freq, PulseAmp: amp,
	})
	d.AddBulk(1, 1, probeCC)
	var cc transport.CCA
	switch cross {
	case "reno":
		cc = cca.NewRenoCC()
	case "cbr":
		cc = cca.NewCBR(0.4 * rate)
	default:
		return 0, fmt.Errorf("core: unknown pulse-sweep cross %q", cross)
	}
	f := transport.NewFlow(d.Eng, transport.FlowConfig{
		ID: 2, UserID: 1, Path: d.FlowConfig(0, 0, nil).Path,
		ReturnDelay: d.Spec.OneWayDelay, CC: cc, Backlogged: true,
	})
	f.Start()
	d.Run(dur)
	etas := probeCC.Est.Elasticity.Window(10*time.Second, dur)
	if len(etas) == 0 {
		return 0, nil
	}
	return stats.Mean(etas), nil
}

// WritePulseSweep renders the ablation table.
func WritePulseSweep(w io.Writer, rows []PulseSweepResult) {
	fmt.Fprintln(w, "abl-pulse: elasticity separation vs pulse frequency/amplitude (48 Mbit/s, 100ms RTT)")
	fmt.Fprintf(w, "%6s %6s %9s %8s %11s\n", "freq", "amp", "eta-reno", "eta-cbr", "separation")
	for _, r := range rows {
		fmt.Fprintf(w, "%5.1fHz %6.2f %9.3f %8.3f %11.3f\n", r.FreqHz, r.Amp, r.EtaReno, r.EtaCBR, r.Separation)
	}
}

// BufferSweepResult holds one buffer-depth cell of the abl-buffer
// ablation: detector separation vs bottleneck buffer size.
type BufferSweepResult struct {
	BufferBDP  float64
	EtaReno    float64
	EtaCBR     float64
	Separation float64
}

// RunBufferSweep runs the abl-buffer ablation: the probe's pulses
// work the bottleneck queue, so the buffer depth (relative to the
// pulse-induced swing) bounds how much elastic response can register.
// Very shallow buffers clip the oscillation; bufferbloat dilutes it.
func RunBufferSweep(bdps []float64, dur time.Duration) ([]BufferSweepResult, error) {
	if len(bdps) == 0 {
		bdps = []float64{0.5, 1, 2, 4}
	}
	if dur <= 0 {
		dur = 30 * time.Second
	}
	var out []BufferSweepResult
	for _, bdp := range bdps {
		etaR, err := bufferCell(bdp, "reno", dur)
		if err != nil {
			return nil, err
		}
		etaC, err := bufferCell(bdp, "cbr", dur)
		if err != nil {
			return nil, err
		}
		out = append(out, BufferSweepResult{
			BufferBDP: bdp, EtaReno: etaR, EtaCBR: etaC, Separation: etaR - etaC,
		})
	}
	return out, nil
}

func bufferCell(bdp float64, cross string, dur time.Duration) (float64, error) {
	const rate = 48e6
	d := NewDumbbell(LinkSpec{RateBps: rate, OneWayDelay: 50 * time.Millisecond, BufferBDP: bdp})
	probeCC := nimbus.NewCCA(nimbus.Config{Mu: rate, PulseFreq: 2})
	d.AddBulk(1, 1, probeCC)
	var cc transport.CCA
	switch cross {
	case "reno":
		cc = cca.NewRenoCC()
	case "cbr":
		cc = cca.NewCBR(0.4 * rate)
	default:
		return 0, fmt.Errorf("core: unknown buffer-sweep cross %q", cross)
	}
	f := transport.NewFlow(d.Eng, transport.FlowConfig{
		ID: 2, UserID: 1, Path: d.FlowConfig(0, 0, nil).Path,
		ReturnDelay: d.Spec.OneWayDelay, CC: cc, Backlogged: true,
	})
	f.Start()
	d.Run(dur)
	etas := probeCC.Est.Elasticity.Window(10*time.Second, dur)
	if len(etas) == 0 {
		return 0, nil
	}
	return stats.Mean(etas), nil
}

// WriteBufferSweep renders the ablation table.
func WriteBufferSweep(w io.Writer, rows []BufferSweepResult) {
	fmt.Fprintln(w, "abl-buffer: elasticity separation vs bottleneck buffer depth (48 Mbit/s, 100ms RTT, 2 Hz)")
	fmt.Fprintf(w, "%8s %9s %8s %11s\n", "buffer", "eta-reno", "eta-cbr", "separation")
	for _, r := range rows {
		fmt.Fprintf(w, "%5.1fBDP %9.3f %8.3f %11.3f\n", r.BufferBDP, r.EtaReno, r.EtaCBR, r.Separation)
	}
}

// SubPacketResult summarizes the abl-subpkt ablation at one link rate:
// N Reno flows on a sub-packet-BDP link (Chen et al., SIGMETRICS '11 —
// the paper's §2.3 developing-world discussion).
type SubPacketResult struct {
	RateBps float64
	Flows   int
	// Jain is the fairness index over per-flow throughput in the
	// measurement window.
	Jain float64
	// StarvedFlows counts flows receiving under 10% of their fair
	// share.
	StarvedFlows int
	// Timeouts counts RTO-driven loss events across flows.
	Timeouts int64
}

// RunSubPacket runs the sub-packet-regime ablation: low-rate links
// where the per-flow BDP is below one packet produce timeout-driven
// starvation over short timescales.
func RunSubPacket(rates []float64, flows int, dur time.Duration) []SubPacketResult {
	if len(rates) == 0 {
		rates = []float64{256e3, 512e3, 1e6, 2e6}
	}
	if flows <= 0 {
		flows = 8
	}
	if dur <= 0 {
		dur = 20 * time.Second
	}
	var out []SubPacketResult
	for _, rate := range rates {
		eng := &sim.Engine{}
		// 200ms one-way: a long, thin path.
		link := sim.NewLink(eng, "thin", rate, 100*time.Millisecond, qdisc.NewDropTail(8*sim.MSS))
		var fl []*transport.Flow
		for i := 0; i < flows; i++ {
			f := transport.NewFlow(eng, transport.FlowConfig{
				ID: i + 1, UserID: 1, Path: []*sim.Link{link},
				ReturnDelay: 100 * time.Millisecond,
				CC:          cca.NewRenoCC(), Backlogged: true,
			})
			f.Start()
			fl = append(fl, f)
		}
		eng.Run(dur)
		var tputs []float64
		var timeouts int64
		starved := 0
		fair := rate / float64(flows)
		for _, f := range fl {
			tp := f.Throughput(dur/4, dur)
			tputs = append(tputs, tp)
			timeouts += f.Sender.LossEvents()
			if tp < 0.1*fair {
				starved++
			}
		}
		out = append(out, SubPacketResult{
			RateBps: rate, Flows: flows,
			Jain:         stats.JainIndex(tputs),
			StarvedFlows: starved,
			Timeouts:     timeouts,
		})
	}
	return out
}

// WriteSubPacket renders the ablation table.
func WriteSubPacket(w io.Writer, rows []SubPacketResult) {
	fmt.Fprintln(w, "abl-subpkt: N Reno flows on sub-packet-BDP links (400ms RTT)")
	fmt.Fprintf(w, "%12s %6s %7s %9s %9s\n", "link", "flows", "jain", "starved", "timeouts")
	for _, r := range rows {
		fmt.Fprintf(w, "%12s %6d %7.3f %9d %9d\n", FmtBps(r.RateBps), r.Flows, r.Jain, r.StarvedFlows, r.Timeouts)
	}
}

// JitterResult summarizes the abl-jitter ablation under one shaping
// configuration: §5.2's observation that flows still contend on
// latency/jitter even when bandwidth is isolated.
type JitterResult struct {
	Shaping string
	// P50, P99 of the smooth flow's per-ack RTT in milliseconds.
	P50Ms, P99Ms float64
	// JitterMs is p99 - p50: the burst-induced delay variation.
	JitterMs float64
}

// RunJitter runs the jitter ablation: a smooth low-rate flow shares a
// token-bucket-shaped queue (and, for comparison, a plain FIFO and a
// fair queue) with a bursty on-off flow; even when average bandwidth
// is protected, token-bucket bursts inflate the smooth flow's delay.
func RunJitter(dur time.Duration) []JitterResult {
	if dur <= 0 {
		dur = 30 * time.Second
	}
	var out []JitterResult
	for _, mode := range []string{"fifo", "shaper", "fq"} {
		const rate = 20e6
		spec := LinkSpec{RateBps: rate, OneWayDelay: 10 * time.Millisecond, BufferBDP: 4}
		switch mode {
		case "shaper":
			spec.Queue = QueueShaper
			// Shape the aggregate to 10 Mbit/s with a deep burst
			// allowance: the token bucket releases accumulated bursts
			// at line rate.
			spec.ShapeRateBps = 10e6
		case "fq":
			spec.Queue = QueueFQ
		}
		d := NewDumbbell(spec)
		// Smooth flow: low-rate CBR stream (a live-video-like source).
		smooth := transport.NewFlow(d.Eng, transport.FlowConfig{
			ID: 1, UserID: 1, Path: d.FlowConfig(0, 0, nil).Path,
			ReturnDelay: d.Spec.OneWayDelay,
			CC:          cca.NewCBR(1e6), Backlogged: true, TraceRTT: true,
		})
		smooth.Start()
		// Bursty flow: on-off Cubic bursts.
		burstCfg := d.FlowConfig(2, 2, cca.NewCubicCC())
		trafficOnOff(d, burstCfg)
		d.Run(dur)

		rtts := smooth.Sender.RTTs.Window(dur/4, dur)
		for i := range rtts {
			rtts[i] *= 1000 // ms
		}
		p50, _ := stats.Quantile(rtts, 0.5)
		p99, _ := stats.Quantile(rtts, 0.99)
		out = append(out, JitterResult{Shaping: mode, P50Ms: p50, P99Ms: p99, JitterMs: p99 - p50})
	}
	return out
}

func trafficOnOff(d *Dumbbell, cfg transport.FlowConfig) {
	f := transport.NewFlow(d.Eng, cfg)
	on := true
	f.Sender.SetBacklogged(true)
	var flip func()
	flip = func() {
		on = !on
		f.Sender.SetBacklogged(on)
		d.Eng.Schedule(500*time.Millisecond, flip)
	}
	d.Eng.Schedule(500*time.Millisecond, flip)
}

// WriteJitter renders the ablation table.
func WriteJitter(w io.Writer, rows []JitterResult) {
	fmt.Fprintln(w, "abl-jitter: smooth 1 Mbit/s flow sharing with a bursty flow (§5.2)")
	fmt.Fprintf(w, "%-8s %9s %9s %10s\n", "queue", "p50-rtt", "p99-rtt", "jitter")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %7.1fms %7.1fms %8.1fms\n", r.Shaping, r.P50Ms, r.P99Ms, r.JitterMs)
	}
}
