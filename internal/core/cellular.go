package core

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/cca"
	"repro/internal/nimbus"
	"repro/internal/obs"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
)

// CellularConfig parameterizes the §5.1 experiment: if flows are
// isolated (as cellular links already are per-user), the CCA's job is
// not fairness but the throughput/self-inflicted-delay trade-off on a
// variable link. This experiment runs each CCA alone on a fading
// cellular link and reports utilization and delay percentiles.
type CellularConfig struct {
	// MeanRateBps is the link's mean rate (default 20 Mbit/s).
	MeanRateBps float64
	// Sigma is the random-walk step size (default 0.15 per 100ms).
	Sigma float64
	// OneWayDelay is the propagation delay (default 25ms).
	OneWayDelay time.Duration
	// Duration is the run length (default 60s).
	Duration time.Duration
	// CCAs lists the controllers to compare (default cubic, bbr,
	// vegas, copa, nimbus-delay).
	CCAs []string
	// Seed drives the fading process (same trace for every CCA).
	Seed int64
	// Obs, when non-nil, receives every run's trace events and metric
	// registrations.
	Obs *obs.Scope `json:"-"`
}

func (c CellularConfig) norm() CellularConfig {
	if c.MeanRateBps <= 0 {
		c.MeanRateBps = 20e6
	}
	if c.Sigma <= 0 {
		c.Sigma = 0.15
	}
	if c.OneWayDelay <= 0 {
		c.OneWayDelay = 25 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = 60 * time.Second
	}
	if len(c.CCAs) == 0 {
		c.CCAs = []string{"cubic", "bbr", "vegas", "copa", "nimbus"}
	}
	return c
}

// CellularRow is one CCA's outcome on the fading link.
type CellularRow struct {
	CCA string
	// Utilization is achieved throughput / mean link rate.
	Utilization float64
	// P50DelayMs and P95DelayMs are RTT percentiles in milliseconds.
	P50DelayMs, P95DelayMs float64
	// SelfInflictedMs is p95 RTT minus the propagation RTT: the
	// standing queue the CCA builds for itself.
	SelfInflictedMs float64
	// LossEvents counts loss epochs.
	LossEvents int64
}

// CellularResult is the experiment outcome.
type CellularResult struct {
	Config CellularConfig
	Rows   []CellularRow
}

// RunCellular executes the experiment: each CCA runs alone (per-user
// isolation means no competition) on an identical fading-rate trace.
func RunCellular(cfg CellularConfig) (*CellularResult, error) {
	cfg = cfg.norm()
	cfg.Obs = fallbackScope(cfg.Obs)
	res := &CellularResult{Config: cfg}
	for _, name := range cfg.CCAs {
		row, err := runCellularOne(cfg, name)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func runCellularOne(cfg CellularConfig, name string) (CellularRow, error) {
	eng := &sim.Engine{}
	// Deep buffer, as cellular base stations have: 8 mean BDPs.
	buf := int(cfg.MeanRateBps / 8 * (2 * cfg.OneWayDelay).Seconds() * 8)
	link := sim.NewLink(eng, "cell", cfg.MeanRateBps, cfg.OneWayDelay, qdisc.NewDropTail(buf))
	wireEngineObs(cfg.Obs, eng, link)
	rng := rand.New(rand.NewSource(cfg.Seed + 17))
	driver := sim.DriveRate(eng, link, 100*time.Millisecond, sim.CellularTrace(rng, cfg.MeanRateBps, cfg.Sigma))

	var cc transport.CCA
	if name == "nimbus" {
		cc = nimbus.NewCCA(nimbus.Config{})
	} else {
		var err error
		cc, err = cca.New(name)
		if err != nil {
			return CellularRow{}, err
		}
	}
	f := transport.NewFlow(eng, transport.FlowConfig{
		ID: 1, Path: []*sim.Link{link}, ReturnDelay: cfg.OneWayDelay,
		CC: cc, Backlogged: true, TraceRTT: true,
		Trace:   cfg.Obs.T(),
		Metrics: cfg.Obs.R(),
	})
	f.Start()
	eng.Run(cfg.Duration)

	warm := cfg.Duration / 4
	rtts := f.Sender.RTTs.Window(warm, cfg.Duration)
	for i := range rtts {
		rtts[i] *= 1000
	}
	p50, _ := stats.Quantile(rtts, 0.5)
	p95, _ := stats.Quantile(rtts, 0.95)
	base := float64(2*cfg.OneWayDelay) / float64(time.Millisecond)
	// Utilization is measured against the rate the link actually
	// offered during the measurement window, not the nominal mean.
	var offered float64
	n := 0
	for _, pt := range driver.Trace {
		if pt.At >= warm {
			offered += pt.Bps
			n++
		}
	}
	if n > 0 {
		offered /= float64(n)
	} else {
		offered = cfg.MeanRateBps
	}
	return CellularRow{
		CCA:             name,
		Utilization:     f.Throughput(warm, cfg.Duration) / offered,
		P50DelayMs:      p50,
		P95DelayMs:      p95,
		SelfInflictedMs: p95 - base,
		LossEvents:      f.Sender.LossEvents(),
	}, nil
}

// WriteTable renders the comparison.
func (r *CellularResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "exp-cellular (§5.1): one flow per CCA on a fading %s link (isolated, no competition)\n",
		FmtBps(r.Config.MeanRateBps))
	fmt.Fprintf(w, "%-8s %6s %9s %9s %14s %8s\n", "cca", "util", "p50-rtt", "p95-rtt", "self-delay-p95", "losses")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s %5.1f%% %7.1fms %7.1fms %12.1fms %8d\n",
			row.CCA, 100*row.Utilization, row.P50DelayMs, row.P95DelayMs, row.SelfInflictedMs, row.LossEvents)
	}
}
