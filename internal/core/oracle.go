package core

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/cca"
	"repro/internal/contention"
	"repro/internal/nimbus"
	"repro/internal/obs"
	"repro/internal/traffic"
	"repro/internal/transport"
)

// OracleConfig parameterizes the probe-accuracy study: a battery of
// randomized scenarios where the simulator's ground-truth contention
// oracle scores the elasticity probe's verdicts — the validation the
// paper's proposed Internet-scale study cannot run, and the reason the
// emulator exists.
type OracleConfig struct {
	// Trials is the number of random scenarios (default 30).
	Trials int
	// Duration is each scenario's length (default 40s).
	Duration time.Duration
	// Seed drives scenario randomization.
	Seed int64
	// Obs, when non-nil, receives every trial's trace events and
	// metric registrations.
	Obs *obs.Scope `json:"-"`
}

func (c OracleConfig) norm() OracleConfig {
	if c.Trials <= 0 {
		c.Trials = 30
	}
	if c.Duration <= 0 {
		c.Duration = 40 * time.Second
	}
	return c
}

// OracleTrial is one scenario's outcome.
type OracleTrial struct {
	// Cross describes the cross-traffic kind.
	Cross string
	// RateBps and RTT describe the link.
	RateBps float64
	RTT     time.Duration
	// TruthElastic is the ground truth: does backlogged CCA-driven
	// cross traffic share the probe's queue?
	TruthElastic bool
	// ProbeElastic is the probe's majority verdict.
	ProbeElastic bool
	// MeanEta is the mean elasticity across windows.
	MeanEta float64
}

// OracleResult is the study outcome.
type OracleResult struct {
	Config OracleConfig
	Trials []OracleTrial
	Score  contention.Score
}

// RunOracle executes the study.
func RunOracle(cfg OracleConfig) (*OracleResult, error) {
	cfg = cfg.norm()
	cfg.Obs = fallbackScope(cfg.Obs)
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &OracleResult{Config: cfg}

	kinds := []string{"none", "reno", "cubic", "bbr", "video", "cbr", "short"}
	for i := 0; i < cfg.Trials; i++ {
		kind := kinds[rng.Intn(len(kinds))]
		rate := []float64{24e6, 48e6, 96e6}[rng.Intn(3)]
		owd := []time.Duration{20, 35, 50}[rng.Intn(3)] * time.Millisecond
		trial, err := runOracleTrial(cfg, rng.Int63(), kind, rate, owd)
		if err != nil {
			return nil, err
		}
		res.Trials = append(res.Trials, trial)
		res.Score.Add(trial.TruthElastic, trial.ProbeElastic)
	}
	return res, nil
}

func runOracleTrial(cfg OracleConfig, seed int64, kind string, rate float64, owd time.Duration) (OracleTrial, error) {
	d := NewDumbbell(LinkSpec{RateBps: rate, OneWayDelay: owd, Queue: QueueDropTail, BufferBDP: 1, Obs: cfg.Obs})
	rng := rand.New(rand.NewSource(seed))

	ncfg := nimbus.Config{Mu: rate, PulseFreq: 2}
	probeCC := nimbus.NewCCA(ncfg)
	probe := d.AddBulk(1, 1, probeCC)
	_ = probe

	truth := false
	switch kind {
	case "none":
	case "reno", "cubic", "bbr":
		cc, err := cca.New(kind)
		if err != nil {
			return OracleTrial{}, err
		}
		f := transport.NewFlow(d.Eng, transport.FlowConfig{
			ID: 2, UserID: 1, Path: d.FlowConfig(0, 0, nil).Path,
			ReturnDelay: owd, CC: cc, Backlogged: true,
		})
		f.Start()
		truth = true
	case "video":
		traffic.NewVideo(d.Eng, transport.FlowConfig{
			ID: 2, UserID: 1, Path: d.FlowConfig(0, 0, nil).Path,
			ReturnDelay: owd, CC: cca.NewCubicCC(),
		}, traffic.VideoConfig{})
	case "cbr":
		f := transport.NewFlow(d.Eng, transport.FlowConfig{
			ID: 2, UserID: 1, Path: d.FlowConfig(0, 0, nil).Path,
			ReturnDelay: owd, CC: cca.NewCBR((0.2 + 0.4*rng.Float64()) * rate), Backlogged: true,
		})
		f.Start()
	case "short":
		traffic.NewShortFlows(d.Eng, traffic.ShortFlowsConfig{
			ArrivalRate: 4, Path: d.FlowConfig(0, 0, nil).Path, ReturnDelay: owd,
			UserID: 1, NewCC: func() transport.CCA { return cca.NewRenoCC() },
			BaseFlowID: 1000, Rand: rng,
		})
	default:
		return OracleTrial{}, fmt.Errorf("core: unknown oracle cross kind %q", kind)
	}

	d.Run(cfg.Duration)

	etas := probeCC.Est.Elasticity.Window(10*time.Second, cfg.Duration)
	trial := OracleTrial{Cross: kind, RateBps: rate, RTT: 2 * owd, TruthElastic: truth}
	if len(etas) > 0 {
		var sum float64
		elastic := 0
		for _, e := range etas {
			sum += e
			if e >= probeCC.Est.Config().EtaThreshold {
				elastic++
			}
		}
		trial.MeanEta = sum / float64(len(etas))
		trial.ProbeElastic = elastic*2 > len(etas)
	}
	return trial, nil
}

// WriteTable renders per-trial rows and the aggregate score.
func (r *OracleResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "oracle study: elasticity probe vs ground truth, %d trials\n", len(r.Trials))
	fmt.Fprintf(w, "%-7s %12s %7s %7s %9s %8s\n", "cross", "link", "rtt", "truth", "verdict", "mean-eta")
	for _, t := range r.Trials {
		fmt.Fprintf(w, "%-7s %12s %7v %7v %9v %8.3f\n",
			t.Cross, FmtBps(t.RateBps), t.RTT, t.TruthElastic, t.ProbeElastic, t.MeanEta)
	}
	fmt.Fprintf(w, "\nprecision=%.3f recall=%.3f accuracy=%.3f f1=%.3f (tp=%d fp=%d tn=%d fn=%d)\n",
		r.Score.Precision(), r.Score.Recall(), r.Score.Accuracy(), r.Score.F1(),
		r.Score.TP, r.Score.FP, r.Score.TN, r.Score.FN)
}
