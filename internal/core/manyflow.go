package core

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/cca"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/sim/check"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/transport"
)

// manyFlowUserBase is the first background-subscriber UserID; the
// victim pair occupies users 1 and 2.
const manyFlowUserBase = 10

// ManyFlowConfig parameterizes the population-scale contention cell: a
// fig1-style victim pair (two backlogged flows under different CCAs,
// each its own subscriber) embedded among N background subscribers
// behind per-user isolation, every background user running a churn
// process of short and long transfers. The cell answers the paper's
// question at fleet scale: with operator isolation in place, does the
// victim's allocation stay pinned to its scheduled share regardless of
// how many neighbours contend or which CCAs they run?
type ManyFlowConfig struct {
	// CCA1/CCA2 name the victim pair's controllers (default reno/cubic).
	CCA1, CCA2 string
	// Users is the background subscriber count (default 100); the cell
	// holds Users+2 subscribers in total.
	Users int
	// RateBps is the bottleneck rate. Default scales with population:
	// 2 Mbit/s of fair share per subscriber.
	RateBps float64
	// PerUserRateBps is every subscriber's plan cap (default 4x the
	// fair share).
	PerUserRateBps float64
	// OneWayDelay is the propagation delay (default 10ms -> 20ms RTT).
	OneWayDelay time.Duration
	// BufferBDP sizes each subscriber's queue in plan-rate
	// bandwidth-delay products (default 2).
	BufferBDP float64
	// Duration is the cell length (default 30s); WarmupFrac excludes
	// the initial fraction from victim averaging (default 0.25).
	Duration   time.Duration
	WarmupFrac float64
	// ChurnThink is the mean think time between a background user's
	// transfers (default 1s); LongFrac the long-transfer probability
	// (default 0.1).
	ChurnThink time.Duration
	LongFrac   float64
	// Seed drives the churn randomness. Each background user's stream
	// is derived from it independently, so the population is
	// byte-replayable.
	Seed int64
	// FluidAbove, when positive, switches background users with index
	// >= FluidAbove to the fluid aggregate: instead of per-flow
	// transport state, their combined load becomes one AIMD-paced
	// packet injector spread round-robin across their user IDs. The
	// scheduler still sees per-user queues, so victim isolation
	// dynamics are preserved at a fraction of the event cost.
	FluidAbove int
	// Check attaches the engine invariant checker (event order, pool
	// hygiene, link conservation) and fails the run on any violation.
	Check bool
	// Obs, when non-nil, receives trace events and metric
	// registrations.
	Obs *obs.Scope `json:"-"`
}

func (c ManyFlowConfig) norm() ManyFlowConfig {
	if c.CCA1 == "" {
		c.CCA1 = "reno"
	}
	if c.CCA2 == "" {
		c.CCA2 = "cubic"
	}
	if c.Users <= 0 {
		c.Users = 100
	}
	if c.RateBps <= 0 {
		c.RateBps = 2e6 * float64(c.Users+2)
	}
	if c.PerUserRateBps <= 0 {
		c.PerUserRateBps = 4 * c.RateBps / float64(c.Users+2)
	}
	if c.OneWayDelay <= 0 {
		c.OneWayDelay = 10 * time.Millisecond
	}
	if c.BufferBDP <= 0 {
		c.BufferBDP = 2
	}
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	if c.WarmupFrac <= 0 || c.WarmupFrac >= 1 {
		c.WarmupFrac = 0.25
	}
	if c.ChurnThink <= 0 {
		c.ChurnThink = time.Second
	}
	if c.LongFrac <= 0 {
		c.LongFrac = 0.1
	}
	if c.FluidAbove < 0 || c.FluidAbove > c.Users {
		c.FluidAbove = 0
	}
	return c
}

// ManyFlowResult is the cell's outcome.
type ManyFlowResult struct {
	Config ManyFlowConfig

	// Victim1Bps/Victim2Bps are the pair's post-warmup throughputs;
	// VictimJain is the fairness index over the two.
	Victim1Bps, Victim2Bps float64
	VictimJain             float64
	// BackgroundBps is the background population's aggregate delivery
	// rate over the whole run (packet-level churn plus fluid).
	BackgroundBps float64
	// Util is whole-run link utilization.
	Util float64

	// FlowsStarted/FlowsCompleted count background transfers;
	// FCTp50/FCTp95 summarize short-flow completion times in seconds.
	FlowsStarted   int
	FlowsCompleted int
	FCTp50, FCTp95 float64
	// Dropped counts packets refused at the isolation discipline.
	Dropped int64

	// Events is the engine's processed event count; MaxLivePackets the
	// pool high-water mark (0 when Check is off). Together they are
	// the cell's cost profile: events bound runtime, live packets
	// bound memory.
	Events         int64
	MaxLivePackets int

	// FluidUsers is the number of subscribers modelled by the fluid
	// aggregate; FluidRateBps its final offered rate.
	FluidUsers   int
	FluidRateBps float64
}

// fluidFlowBase offsets fluid packets' FlowIDs; the low bits carry the
// fluid-user index so the far gate can credit the right transfer.
const fluidFlowBase = 1 << 20

// fluidUser is one subscriber modelled by the aggregate: its demand is
// the same churn process the packet-level users run — identical
// derived randomness stream, identical draw order — but its transfer
// proceeds as a rate share of the aggregate injector instead of a
// full transport sender.
type fluidUser struct {
	id        int
	rng       *rand.Rand
	remaining int64
	active    bool
}

// fluidAggregate stands in for a population of churning background
// users: one paced injector offers the combined demand of the active
// transfers, spreading MSS packets round-robin across their user IDs
// at each user's plan rate (capped near link capacity — beyond that
// the per-user queues are full and extra offered load only
// manufactures drops). The isolation discipline still queues and
// schedules each user individually, so the victim's allocation
// dynamics are preserved while the per-flow transport state (cwnd,
// ack clocks, retransmission timers) of thousands of senders
// collapses into one timer. Completions are delivery-driven: a
// transfer ends when its bytes have crossed the link, so drops extend
// transfers exactly as retransmission would.
type fluidAggregate struct {
	eng  *sim.Engine
	path []*sim.Link

	users      []*fluidUser
	activeIdx  []int // indices into users with a transfer in progress
	cursor     int
	perUserBps float64
	maxBps     float64
	think      time.Duration
	longFrac   float64
	shortSizes traffic.SizeDist
	longSizes  traffic.SizeDist
	injecting  bool

	// DeliveredBytes counts bytes arriving at the far gate; Started,
	// Completed, and LongStarted mirror the packet-level churn counters.
	DeliveredBytes     int64
	Started, Completed int
	LongStarted        int
}

func newFluidAggregate(eng *sim.Engine, link *sim.Link, cfg ManyFlowConfig) *fluidAggregate {
	f := &fluidAggregate{
		eng:        eng,
		path:       []*sim.Link{link},
		perUserBps: cfg.PerUserRateBps,
		maxBps:     1.2 * cfg.RateBps,
		think:      cfg.ChurnThink,
		longFrac:   cfg.LongFrac,
		shortSizes: traffic.BoundedPareto{Min: 6 * 1024, Max: 3 << 20, Alpha: 1.2},
		longSizes:  traffic.BoundedPareto{Min: 4 << 20, Max: 64 << 20, Alpha: 1.5},
	}
	for i := cfg.FluidAbove; i < cfg.Users; i++ {
		u := &fluidUser{
			id: manyFlowUserBase + i,
			// The same derived stream the packet-level counterpart
			// would use, so arrival gaps and sizes replay identically.
			rng: rand.New(rand.NewSource(faults.DeriveSeed(cfg.Seed, fmt.Sprintf("manyflow/churn/%d", i)))),
		}
		f.users = append(f.users, u)
		f.scheduleArrival(u)
	}
	return f
}

func (f *fluidAggregate) scheduleArrival(u *fluidUser) {
	gap := time.Duration(u.rng.ExpFloat64() * float64(f.think))
	f.eng.Schedule(gap, func() { f.arrive(u) })
}

func (f *fluidAggregate) arrive(u *fluidUser) {
	if u.rng.Float64() < f.longFrac {
		u.remaining = f.longSizes.Sample(u.rng)
		f.LongStarted++
	} else {
		u.remaining = f.shortSizes.Sample(u.rng)
	}
	f.Started++
	u.active = true
	f.activeIdx = append(f.activeIdx, f.indexOf(u))
	if !f.injecting {
		f.injecting = true
		f.tick()
	}
}

func (f *fluidAggregate) indexOf(u *fluidUser) int {
	return u.id - f.users[0].id
}

// Receive implements sim.Receiver: the far gate. Delivery drains the
// transfer; the last byte's arrival completes it.
func (f *fluidAggregate) Receive(p *sim.Packet) {
	idx := p.FlowID - fluidFlowBase
	f.DeliveredBytes += int64(p.Size)
	u := f.users[idx]
	p.Release()
	if !u.active {
		return // overshoot from packets already in flight at completion
	}
	u.remaining -= int64(p.Size)
	if u.remaining <= 0 {
		u.active = false
		f.Completed++
		f.scheduleArrival(u)
	}
}

func (f *fluidAggregate) tick() {
	// Compact completed transfers out of the active ring.
	live := f.activeIdx[:0]
	for _, idx := range f.activeIdx {
		if f.users[idx].active {
			live = append(live, idx)
		}
	}
	f.activeIdx = live
	if len(f.activeIdx) == 0 {
		f.injecting = false
		return
	}
	rate := float64(len(f.activeIdx)) * f.perUserBps
	if rate > f.maxBps {
		rate = f.maxBps
	}
	if f.cursor >= len(f.activeIdx) {
		f.cursor = 0
	}
	idx := f.activeIdx[f.cursor]
	f.cursor++
	p := f.eng.NewPacket()
	p.Size = sim.MSS
	p.UserID = f.users[idx].id
	p.FlowID = fluidFlowBase + idx
	p.Path = f.path
	p.Dest = f
	sim.Inject(p)
	interval := time.Duration(float64(sim.MSS) * 8 / rate * float64(time.Second))
	if interval < time.Microsecond {
		interval = time.Microsecond
	}
	f.eng.Schedule(interval, f.tick)
}

// RunManyFlow executes the cell.
func RunManyFlow(cfg ManyFlowConfig) (*ManyFlowResult, error) {
	cfg = cfg.norm()
	cfg.Obs = fallbackScope(cfg.Obs)

	cc1, err := cca.New(cfg.CCA1)
	if err != nil {
		return nil, fmt.Errorf("core: manyflow: victim 1: %w", err)
	}
	cc2, err := cca.New(cfg.CCA2)
	if err != nil {
		return nil, fmt.Errorf("core: manyflow: victim 2: %w", err)
	}

	eng := &sim.Engine{}
	var ck *check.Checker
	if cfg.Check {
		ck = check.Attach(eng)
	}

	// Each subscriber's queue is sized to its plan-rate BDP, not the
	// link BDP: at thousands of users a shared-BDP queue per user
	// would let the aggregate backlog dwarf the link's own buffering.
	rtt := 2 * cfg.OneWayDelay
	perUserCap := int(cfg.BufferBDP * cfg.PerUserRateBps / 8 * rtt.Seconds())
	if perUserCap < 8*sim.MSS {
		perUserCap = 8 * sim.MSS
	}
	iso := qdisc.NewUserIsolation(cfg.PerUserRateBps, 16*sim.MSS, perUserCap)
	link := sim.NewLink(eng, "bottleneck", cfg.RateBps, cfg.OneWayDelay, iso)
	if sc := cfg.Obs; sc != nil {
		link.Trace = sc.T()
		eng.RegisterMetrics(sc.R(), "")
		link.RegisterMetrics(sc.R())
	}
	if ck != nil {
		ck.WatchLink(link, nil, (cfg.Users+2)*perUserCap)
	}

	flowCfg := func(id, userID int, cc transport.CCA) transport.FlowConfig {
		sc := cfg.Obs
		return transport.FlowConfig{
			ID:          id,
			UserID:      userID,
			Path:        []*sim.Link{link},
			ReturnDelay: cfg.OneWayDelay,
			CC:          cc,
			Trace:       sc.T(),
			Metrics:     sc.R(),
		}
	}
	addBulk := func(id, userID int, cc transport.CCA) *transport.Flow {
		fc := flowCfg(id, userID, cc)
		fc.Backlogged = true
		f := transport.NewFlow(eng, fc)
		f.Start()
		return f
	}

	victim1 := addBulk(1, 1, cc1)
	victim2 := addBulk(2, 2, cc2)

	packetUsers := cfg.Users
	if cfg.FluidAbove > 0 {
		packetUsers = cfg.FluidAbove
	}
	churns := make([]*traffic.Churn, 0, packetUsers)
	for i := 0; i < packetUsers; i++ {
		userID := manyFlowUserBase + i
		rng := rand.New(rand.NewSource(faults.DeriveSeed(cfg.Seed, fmt.Sprintf("manyflow/churn/%d", i))))
		churns = append(churns, traffic.NewChurn(eng, traffic.ChurnConfig{
			MeanThink:   cfg.ChurnThink,
			LongFrac:    cfg.LongFrac,
			NewCC:       func() transport.CCA { return cca.NewRenoCC() },
			Path:        []*sim.Link{link},
			ReturnDelay: cfg.OneWayDelay,
			UserID:      userID,
			BaseFlowID:  1000 + 10000*i,
			Rand:        rng,
		}))
	}

	var fluid *fluidAggregate
	if cfg.FluidAbove > 0 && cfg.FluidAbove < cfg.Users {
		fluid = newFluidAggregate(eng, link, cfg)
	}

	eng.Run(cfg.Duration)

	res := &ManyFlowResult{Config: cfg, Events: eng.Processed, Dropped: iso.Dropped}
	warmup := time.Duration(cfg.WarmupFrac * float64(cfg.Duration))
	res.Victim1Bps = victim1.Throughput(warmup, cfg.Duration)
	res.Victim2Bps = victim2.Throughput(warmup, cfg.Duration)
	res.VictimJain = stats.JainIndex([]float64{res.Victim1Bps, res.Victim2Bps})
	res.Util = link.Utilization(cfg.Duration)

	var bgBytes int64
	var fcts []float64
	for _, c := range churns {
		res.FlowsStarted += c.Started
		res.FlowsCompleted += c.Completed
		bgBytes += c.AckedBytes()
		fcts = append(fcts, c.ShortFCTs...)
	}
	if fluid != nil {
		bgBytes += fluid.DeliveredBytes
		res.FluidUsers = len(fluid.users)
		res.FlowsStarted += fluid.Started
		res.FlowsCompleted += fluid.Completed
		activeFluid := 0
		for _, u := range fluid.users {
			if u.active {
				activeFluid++
			}
		}
		res.FluidRateBps = float64(activeFluid) * fluid.perUserBps
		if res.FluidRateBps > fluid.maxBps {
			res.FluidRateBps = fluid.maxBps
		}
	}
	res.BackgroundBps = float64(bgBytes) * 8 / cfg.Duration.Seconds()
	if len(fcts) > 0 {
		cdf := stats.NewCDF(fcts)
		if q, err := cdf.Quantile(0.5); err == nil {
			res.FCTp50 = q
		}
		if q, err := cdf.Quantile(0.95); err == nil {
			res.FCTp95 = q
		}
	}

	if ck != nil {
		ck.VerifyLinks()
		_, res.MaxLivePackets = ck.LivePackets()
		if err := ck.Err(); err != nil {
			return nil, fmt.Errorf("core: manyflow: invariant violated: %w", err)
		}
	}
	return res, nil
}

// WriteTable renders the cell.
func (r *ManyFlowResult) WriteTable(w io.Writer) {
	c := r.Config
	fmt.Fprintf(w, "manyflow: %s/%s victim pair among %d background users on a %s link (%v RTT), plan %s\n",
		c.CCA1, c.CCA2, c.Users, FmtBps(c.RateBps), 2*c.OneWayDelay, FmtBps(c.PerUserRateBps))
	if r.FluidUsers > 0 {
		fmt.Fprintf(w, "hybrid fidelity: %d packet-level users, %d fluid (final offered %s)\n",
			c.Users-r.FluidUsers, r.FluidUsers, FmtBps(r.FluidRateBps))
	}
	fmt.Fprintf(w, "%-12s %12s %12s %7s %12s %6s\n",
		"victims", "flow1", "flow2", "jain", "background", "util")
	fmt.Fprintf(w, "%-12s %12s %12s %7.3f %12s %6.3f\n",
		c.CCA1+"/"+c.CCA2, FmtBps(r.Victim1Bps), FmtBps(r.Victim2Bps),
		r.VictimJain, FmtBps(r.BackgroundBps), r.Util)
	fmt.Fprintf(w, "background flows: %d started, %d completed, FCT p50 %.3fs p95 %.3fs, %d drops\n",
		r.FlowsStarted, r.FlowsCompleted, r.FCTp50, r.FCTp95, r.Dropped)
	fmt.Fprintf(w, "cost: %d events", r.Events)
	if r.MaxLivePackets > 0 {
		fmt.Fprintf(w, ", %d peak live packets", r.MaxLivePackets)
	}
	fmt.Fprintln(w)
}
