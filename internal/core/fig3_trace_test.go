package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestFig3TracedRunLog is the tentpole acceptance check: a traced fig3
// run produces a JSONL run log (manifest + events + summary) that
// re-reads cleanly and is consistent with the run's own summary stats.
func TestFig3TracedRunLog(t *testing.T) {
	cfg := Fig3Config{
		PhaseDuration: 10 * time.Second,
		Phases:        []string{"reno", "cbr"},
		Seed:          3,
	}

	var buf bytes.Buffer
	w, err := obs.NewRunLogWriter(&buf, cfg.Manifest())
	if err != nil {
		t.Fatal(err)
	}
	tr := w.Tracer()
	tr.SetSampling(16) // keep the log small; control events are unaffected
	reg := obs.NewRegistry()
	cfg.Obs = &obs.Scope{Reg: reg, Tracer: tr}

	res, err := RunFig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(res.Summary()); err != nil {
		t.Fatal(err)
	}

	log, err := obs.ReadRunLog(&buf)
	if err != nil {
		t.Fatalf("run log does not re-read: %v", err)
	}

	// Manifest round-trips the run's configuration.
	want := cfg.Manifest()
	if log.Manifest.Tool != want.Tool || log.Manifest.Seed != want.Seed ||
		log.Manifest.RateBps != want.RateBps || log.Manifest.PulseFreqHz != want.PulseFreqHz {
		t.Errorf("manifest mismatch: got %+v want %+v", log.Manifest, want)
	}
	if len(log.Manifest.Phases) != 2 || log.Manifest.Phases[0] != "reno" {
		t.Errorf("manifest phases: %v", log.Manifest.Phases)
	}

	if len(log.Events) == 0 {
		t.Fatal("no events in run log")
	}
	// Timestamps are sim-time and monotone per source. (The estimator
	// stamps events with the sample-interval end, which can trail the
	// engine clock by a few intervals during catch-up, so the merged
	// stream is only near-sorted globally.)
	lastBySrc := map[string]time.Duration{}
	horizon := 2 * cfg.PhaseDuration
	counts := map[string]int64{}
	for i, ev := range log.Events {
		if ev.At < lastBySrc[ev.Src] {
			t.Fatalf("event %d (%s from %q) at %v before %v: timestamps not monotone sim-time",
				i, ev.Type, ev.Src, ev.At, lastBySrc[ev.Src])
		}
		if ev.At > horizon {
			t.Fatalf("event %d at %v beyond run horizon %v: not sim-time", i, ev.At, horizon)
		}
		lastBySrc[ev.Src] = ev.At
		counts[ev.Type.String()]++
	}
	for _, typ := range []string{"enqueue", "send", "ack", "cwnd", "eta", "pulse"} {
		if counts[typ] == 0 {
			t.Errorf("no %q events in run log (have %v)", typ, counts)
		}
	}

	if log.Summary == nil {
		t.Fatal("no summary line")
	}
	// Summary event counts are the tracer's true (pre-sampling) counts:
	// they must match the retained count exactly for control events and
	// dominate it for sampled bulk events.
	if got := log.Summary.EventCounts["eta"]; got != counts["eta"] {
		t.Errorf("summary eta count %d != retained %d (control events must not be sampled)", got, counts["eta"])
	}
	if got := log.Summary.EventCounts["send"]; got < counts["send"] {
		t.Errorf("summary send count %d < retained %d", got, counts["send"])
	}

	// The summary's metrics agree with the in-memory result.
	sum := res.Summary()
	for k, v := range sum.Metrics {
		if got := log.Summary.Metrics[k]; got != v {
			t.Errorf("summary metric %s = %v, want %v", k, got, v)
		}
	}
	// One elasticity window per EvEta event: the trace and the result's
	// eta series describe the same run.
	if got := int64(len(res.Eta)); log.Summary.EventCounts["eta"] != got {
		t.Errorf("eta events %d != elasticity windows %d", log.Summary.EventCounts["eta"], got)
	}

	// The registry saw the run too: the engine and link gauges are live.
	snap := map[string]float64{}
	for _, p := range reg.Snapshot() {
		snap[p.Name] = p.Value
	}
	if snap["sim.engine.events"] == 0 {
		t.Error("engine event counter not registered or zero")
	}
	if snap["sim.link.sent_packets"] == 0 {
		t.Error("link sent_packets gauge not registered or zero")
	}
	if reg.Histogram("flow.rtt_ms", "flow=1", nil).Count() == 0 {
		t.Error("probe flow RTT histogram empty")
	}
}
