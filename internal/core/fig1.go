package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/obs"
)

// Fig1Config parameterizes the isolation experiment: CCA pairings
// contend on one access link under different in-network bandwidth
// management disciplines.
type Fig1Config struct {
	// RateBps is the access link rate (default 48 Mbit/s, matching
	// Figure 3's link).
	RateBps float64
	// OneWayDelay is the propagation delay (default 20ms → 40ms RTT).
	OneWayDelay time.Duration
	// Duration is the scenario length (default 60s).
	Duration time.Duration
	// WarmupFrac excludes the initial fraction from throughput
	// averaging (default 1/3).
	WarmupFrac float64
	// Pairs lists CCA name pairs (default the paper-motivated set).
	Pairs [][2]string
	// Queues lists disciplines to compare (default FIFO, FQ,
	// per-user isolation).
	Queues []QueueKind
	// BufferBDP sizes the buffer (default 2 — a bufferbloated access
	// link, where BBR-vs-Reno asymmetry is pronounced).
	BufferBDP float64
	// Obs, when non-nil, receives every cell's trace events and metric
	// registrations.
	Obs *obs.Scope `json:"-"`
}

func (c Fig1Config) norm() Fig1Config {
	if c.RateBps <= 0 {
		c.RateBps = 48e6
	}
	if c.OneWayDelay <= 0 {
		c.OneWayDelay = 20 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = 60 * time.Second
	}
	if c.WarmupFrac <= 0 || c.WarmupFrac >= 1 {
		c.WarmupFrac = 1.0 / 3
	}
	if len(c.Pairs) == 0 {
		c.Pairs = [][2]string{
			{"reno", "reno"},
			{"reno", "cubic"},
			{"reno", "bbr"},
			{"cubic", "bbr"},
		}
	}
	if len(c.Queues) == 0 {
		c.Queues = []QueueKind{QueueDropTail, QueueFQ, QueueUserIso}
	}
	if c.BufferBDP <= 0 {
		c.BufferBDP = 2
	}
	return c
}

// Fig1Row is one (pair, queue) cell of the experiment.
type Fig1Row struct {
	CCA1, CCA2 string
	Queue      QueueKind
	Tput1Bps   float64
	Tput2Bps   float64
	// Share2 is flow 2's fraction of the combined throughput.
	Share2 float64
	// Jain is Jain's fairness index over the two allocations.
	Jain float64
	// Harm1 is the harm flow 1 suffers relative to a fair half-link
	// share.
	Harm1 float64
}

// Fig1Result is the full grid.
type Fig1Result struct {
	Config Fig1Config
	Rows   []Fig1Row
}

// RunFig1 executes the isolation experiment: it quantifies Figure 1's
// claim that operator bandwidth management (fair queueing, per-user
// throttling+isolation) removes CCA identity from bandwidth
// allocation, while FIFO queues let aggressive CCAs dominate.
func RunFig1(cfg Fig1Config) (*Fig1Result, error) {
	cfg = cfg.norm()
	cfg.Obs = fallbackScope(cfg.Obs)
	res := &Fig1Result{Config: cfg}
	for _, pair := range cfg.Pairs {
		for _, q := range cfg.Queues {
			row, err := runFig1Cell(cfg, pair, q)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// runFig1Cell is a thin wrapper over the shared duel cell: Figure 1 is
// a CCA-pair x queue grid of duels on a clean link.
func runFig1Cell(cfg Fig1Config, pair [2]string, q QueueKind) (Fig1Row, error) {
	dc := DuelConfig{
		CCA1:        pair[0],
		CCA2:        pair[1],
		RateBps:     cfg.RateBps,
		OneWayDelay: cfg.OneWayDelay,
		Queue:       q,
		BufferBDP:   cfg.BufferBDP,
		Duration:    cfg.Duration,
		WarmupFrac:  cfg.WarmupFrac,
		Obs:         cfg.Obs,
	}
	if q == QueueUserIso {
		// Each flow is a distinct subscriber capped at half the link:
		// throttling to the purchased rate plus isolation.
		dc.ShapeRateBps = cfg.RateBps / 2
	}
	res, err := RunDuel(dc)
	if err != nil {
		return Fig1Row{}, err
	}
	return Fig1Row{
		CCA1: pair[0], CCA2: pair[1], Queue: q,
		Tput1Bps: res.Tput1Bps, Tput2Bps: res.Tput2Bps,
		Share2: res.Share2,
		Jain:   res.Jain,
		Harm1:  res.Harm1,
	}, nil
}

// WriteTable renders the grid as the fig1 table.
func (r *Fig1Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "fig1: CCA pairs on a %s access link (%v RTT), 2 backlogged flows\n",
		FmtBps(r.Config.RateBps), 2*r.Config.OneWayDelay)
	fmt.Fprintf(w, "%-14s %-10s %12s %12s %8s %7s %7s\n",
		"pair", "queue", "flow1", "flow2", "share2", "jain", "harm1")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %-10s %12s %12s %7.1f%% %7.3f %7.3f\n",
			row.CCA1+"/"+row.CCA2, string(row.Queue),
			FmtBps(row.Tput1Bps), FmtBps(row.Tput2Bps),
			100*row.Share2, row.Jain, row.Harm1)
	}
}

// Row returns the row for a pair and queue, or nil.
func (r *Fig1Result) Row(cca1, cca2 string, q QueueKind) *Fig1Row {
	for i := range r.Rows {
		row := &r.Rows[i]
		if row.CCA1 == cca1 && row.CCA2 == cca2 && row.Queue == q {
			return row
		}
	}
	return nil
}
