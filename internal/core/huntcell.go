package core

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/cca"
	"repro/internal/faults"
	"repro/internal/nimbus"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/transport"
)

// HuntCellConfig parameterizes the adversarial-search cell: one main
// flow — a victim bulk transfer, or in probe mode a Nimbus elasticity
// probe — on a bottleneck whose impairments come from an *inline*
// fault config (arbitrary, not just the named registry profiles,
// including capacity oscillation) while a declarative cross-traffic
// schedule takes phased turns against it. Every knob the hunt genome
// encodes lands here, so a decoded genome is an ordinary, replayable
// experiment config.
type HuntCellConfig struct {
	// VictimCCA names the main flow's controller (default "reno").
	// Ignored in probe mode.
	VictimCCA string
	// Probe switches the main flow to a Nimbus elasticity probe whose
	// per-phase verdicts are scored against the schedule's ground
	// truth.
	Probe bool
	// Cross is the cross-traffic schedule; the cell's duration is the
	// schedule's total length.
	Cross []traffic.Phase
	// RateBps is the bottleneck rate (default 16 Mbit/s).
	RateBps float64
	// OneWayDelay is the propagation delay (default 15ms -> 30ms RTT).
	OneWayDelay time.Duration
	// Queue selects the discipline (default droptail).
	Queue QueueKind
	// BufferBDP sizes the buffer (default 1).
	BufferBDP float64
	// WarmupFrac excludes the initial fraction from whole-run
	// throughput averaging (default 0.15).
	WarmupFrac float64
	// Seed drives workload randomness (short-flow arrivals and sizes).
	Seed int64
	// Fault, when non-nil, imposes the inline impairment chain plus
	// any rate oscillation; it takes precedence over FaultProfile.
	Fault *faults.Config
	// FaultProfile names a registered profile when Fault is nil.
	FaultProfile string
	// FaultSeed drives the fault injectors.
	FaultSeed int64
	// Obs, when non-nil, receives the run's trace events and metric
	// registrations.
	Obs *obs.Scope `json:"-"`
}

func (c HuntCellConfig) norm() HuntCellConfig {
	if c.VictimCCA == "" {
		c.VictimCCA = "reno"
	}
	if c.RateBps <= 0 {
		c.RateBps = 16e6
	}
	if c.OneWayDelay <= 0 {
		c.OneWayDelay = 15 * time.Millisecond
	}
	if c.Queue == "" {
		c.Queue = QueueDropTail
	}
	if c.BufferBDP <= 0 {
		c.BufferBDP = 1
	}
	if c.WarmupFrac <= 0 || c.WarmupFrac >= 1 {
		c.WarmupFrac = 0.15
	}
	return c
}

// HuntCellPhase is one schedule phase's outcome.
type HuntCellPhase struct {
	Kind       string
	Start, End time.Duration
	// CrossTputBps is the phase workload's achieved throughput.
	CrossTputBps float64
	// MainTputBps is the main flow's throughput within the phase
	// (after the settle margin).
	MainTputBps float64

	// Probe-mode fields: the estimator's verdict for the phase against
	// the schedule's ground truth. Decided is false when no elasticity
	// window landed inside the phase (too short to call).
	TruthElastic bool
	ProbeElastic bool
	Decided      bool
	Windows      int
	MeanEta      float64
}

// HuntCellResult is the cell's outcome: whole-run victim metrics for
// the harm/unfairness objectives and per-phase probe verdicts for the
// misclassification/flip objectives.
type HuntCellResult struct {
	Config HuntCellConfig
	Phases []HuntCellPhase

	// MainTputBps is the main flow's post-warmup throughput;
	// CrossTputBps the schedule's duration-weighted aggregate.
	MainTputBps  float64
	CrossTputBps float64
	// FairShareBps is the half-link reference allocation.
	FairShareBps float64
	// Harm is Ware-style harm to the main flow vs the fair share.
	Harm float64
	// Jain is the fairness index over (main, cross) allocations.
	Jain float64
	// Util is the combined post-warmup link utilization.
	Util float64

	// Probe-mode aggregates: Decided counts phases with a verdict,
	// Misclassified those whose verdict contradicts ground truth.
	Decided       int
	Misclassified int
}

// settleMargin is how much of a phase's start is excluded from verdict
// and throughput windows: transitions leak the previous phase's queue.
func settleMargin(phase time.Duration) time.Duration {
	s := 3 * time.Second
	if max := phase / 3; s > max {
		s = max
	}
	return s
}

// RunHuntCell executes the cell.
func RunHuntCell(cfg HuntCellConfig) (*HuntCellResult, error) {
	cfg = cfg.norm()
	cfg.Obs = fallbackScope(cfg.Obs)
	if err := traffic.ValidateSchedule(cfg.Cross); err != nil {
		return nil, fmt.Errorf("core: huntcell: %w", err)
	}
	total := traffic.ScheduleDuration(cfg.Cross)

	spec := LinkSpec{
		RateBps:     cfg.RateBps,
		OneWayDelay: cfg.OneWayDelay,
		Queue:       cfg.Queue,
		BufferBDP:   cfg.BufferBDP,
		FaultSeed:   cfg.FaultSeed,
		Obs:         cfg.Obs,
	}
	var rateFn func(time.Duration) float64
	switch {
	case cfg.Fault != nil:
		if err := cfg.Fault.Validate(); err != nil {
			return nil, fmt.Errorf("core: huntcell: %w", err)
		}
		if !cfg.Fault.IsZero() {
			p := cfg.Fault.Profile()
			spec.Faults = &p
			rateFn = cfg.Fault.RateFunc(cfg.RateBps)
		}
	case cfg.FaultProfile != "":
		p, err := faults.Lookup(cfg.FaultProfile)
		if err != nil {
			return nil, fmt.Errorf("core: huntcell: %w", err)
		}
		spec.Faults = &p
	}

	d := NewDumbbell(spec)
	if rateFn != nil {
		// Drive the capacity oscillation at ~32 samples per period,
		// clamped so tiny periods stay cheap and huge ones stay smooth.
		interval := time.Duration(cfg.Fault.OscPeriodS * float64(time.Second) / 32)
		if interval < 5*time.Millisecond {
			interval = 5 * time.Millisecond
		}
		if interval > 100*time.Millisecond {
			interval = 100 * time.Millisecond
		}
		sim.DriveRate(d.Eng, d.Link, interval, rateFn)
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	var probeCC *nimbus.CCA
	var main *transport.Flow
	if cfg.Probe {
		probeCC = nimbus.NewCCA(nimbus.Config{Mu: cfg.RateBps, PulseFreq: 2})
		main = d.AddBulk(1, 1, probeCC)
	} else {
		cc, err := cca.New(cfg.VictimCCA)
		if err != nil {
			return nil, fmt.Errorf("core: huntcell: victim: %w", err)
		}
		main = d.AddBulk(1, 1, cc)
	}

	type phaseBounds struct {
		kind       string
		start, end time.Duration
		cross      func(from, to time.Duration) float64
	}
	var phases []phaseBounds
	var at time.Duration
	for i, ph := range cfg.Cross {
		start, end := at, at+ph.Duration()
		at = end
		pb := phaseBounds{kind: ph.Kind, start: start, end: end}
		switch kind := ph.Kind; kind {
		case "idle":
			pb.cross = func(from, to time.Duration) float64 { return 0 }
		case "video":
			var v *traffic.Video
			d.Eng.ScheduleAt(start, func() {
				v = traffic.NewVideo(d.Eng, d.FlowConfig(100+i, 1, cca.NewCubicCC()), traffic.VideoConfig{})
			})
			d.Eng.ScheduleAt(end, func() {
				if v != nil {
					v.Stop()
					v.Flow.Sender.SetBacklogged(false)
				}
			})
			pb.cross = func(from, to time.Duration) float64 {
				if v == nil {
					return 0
				}
				return v.Flow.Throughput(from, to)
			}
		case "short":
			var g *traffic.ShortFlows
			dur := end - start
			d.Eng.ScheduleAt(start, func() {
				g = traffic.NewShortFlows(d.Eng, traffic.ShortFlowsConfig{
					ArrivalRate: 6,
					Path:        d.FlowConfig(0, 0, nil).Path,
					ReturnDelay: d.Spec.OneWayDelay,
					UserID:      1,
					NewCC:       func() transport.CCA { return cca.NewRenoCC() },
					BaseFlowID:  1000 + 1000*i,
					Rand:        rng,
				})
			})
			d.Eng.ScheduleAt(end, func() {
				if g != nil {
					g.Stop()
				}
			})
			gp := &g
			pb.cross = func(from, to time.Duration) float64 {
				if *gp == nil {
					return 0
				}
				return float64((*gp).TotalBytes) * 8 / dur.Seconds()
			}
		case "cbr":
			var f *transport.Flow
			d.Eng.ScheduleAt(start, func() {
				fc := d.FlowConfig(100+i, 1, cca.NewCBR(0.4*cfg.RateBps))
				fc.Backlogged = true
				f = transport.NewFlow(d.Eng, fc)
				f.Start()
			})
			d.Eng.ScheduleAt(end, func() {
				if f != nil {
					f.Sender.SetBacklogged(false)
				}
			})
			pb.cross = func(from, to time.Duration) float64 {
				if f == nil {
					return 0
				}
				return f.Throughput(from, to)
			}
		default: // a CCA-driven backlogged flow
			cc, err := cca.New(kind)
			if err != nil {
				return nil, fmt.Errorf("core: huntcell phase %q: %w", kind, err)
			}
			var f *transport.Flow
			d.Eng.ScheduleAt(start, func() {
				fc := d.FlowConfig(100+i, 1, cc)
				fc.Backlogged = true
				f = transport.NewFlow(d.Eng, fc)
				f.Start()
			})
			d.Eng.ScheduleAt(end, func() {
				if f != nil {
					f.Sender.SetBacklogged(false)
				}
			})
			pb.cross = func(from, to time.Duration) float64 {
				if f == nil {
					return 0
				}
				return f.Throughput(from, to)
			}
		}
		phases = append(phases, pb)
	}

	d.Run(total)

	res := &HuntCellResult{Config: cfg, FairShareBps: cfg.RateBps / 2}
	var crossWeighted float64
	for _, pb := range phases {
		settle := settleMargin(pb.end - pb.start)
		ph := HuntCellPhase{
			Kind: pb.kind, Start: pb.start, End: pb.end,
			CrossTputBps: pb.cross(pb.start+settle, pb.end),
			MainTputBps:  main.Throughput(pb.start+settle, pb.end),
			TruthElastic: traffic.ElasticKind(pb.kind),
		}
		if cfg.Probe {
			etas := probeCC.Est.Elasticity.Window(pb.start+settle, pb.end)
			ph.Windows = len(etas)
			if len(etas) > 0 {
				ph.Decided = true
				ph.MeanEta = stats.Mean(etas)
				elastic := 0
				for _, e := range etas {
					if e >= probeCC.Est.Config().EtaThreshold {
						elastic++
					}
				}
				ph.ProbeElastic = elastic*2 > len(etas)
				res.Decided++
				if ph.ProbeElastic != ph.TruthElastic {
					res.Misclassified++
				}
			}
		}
		crossWeighted += ph.CrossTputBps * (pb.end - pb.start).Seconds()
		res.Phases = append(res.Phases, ph)
	}

	warmup := time.Duration(cfg.WarmupFrac * float64(total))
	res.MainTputBps = main.Throughput(warmup, total)
	res.CrossTputBps = crossWeighted / total.Seconds()
	res.Harm = stats.Harm(res.FairShareBps, res.MainTputBps)
	res.Jain = stats.JainIndex([]float64{res.MainTputBps, res.CrossTputBps})
	res.Util = (res.MainTputBps + res.CrossTputBps) / cfg.RateBps
	return res, nil
}

// WriteTable renders the cell.
func (r *HuntCellResult) WriteTable(w io.Writer) {
	c := r.Config
	mode := "victim=" + c.VictimCCA
	if c.Probe {
		mode = "probe=nimbus"
	}
	fmt.Fprintf(w, "huntcell: %s on a %s link (%v RTT), queue=%s\n",
		mode, FmtBps(c.RateBps), 2*c.OneWayDelay, string(c.Queue))
	fmt.Fprintf(w, "%-8s %8s %8s %12s %12s", "phase", "start", "end", "cross-tput", "main-tput")
	if c.Probe {
		fmt.Fprintf(w, " %7s %9s %8s", "truth", "verdict", "mean-eta")
	}
	fmt.Fprintln(w)
	for _, p := range r.Phases {
		fmt.Fprintf(w, "%-8s %8v %8v %12s %12s",
			p.Kind, p.Start, p.End, FmtBps(p.CrossTputBps), FmtBps(p.MainTputBps))
		if c.Probe {
			verdict := fmt.Sprintf("%v", p.ProbeElastic)
			if !p.Decided {
				verdict = "-"
			}
			fmt.Fprintf(w, " %7v %9s %8.3f", p.TruthElastic, verdict, p.MeanEta)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "main %s  cross %s  harm %.3f  jain %.3f  util %.3f",
		FmtBps(r.MainTputBps), FmtBps(r.CrossTputBps), r.Harm, r.Jain, r.Util)
	if c.Probe {
		fmt.Fprintf(w, "  misclassified %d/%d", r.Misclassified, r.Decided)
	}
	fmt.Fprintln(w)
}
