package core

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// BenchmarkManyFlow measures the cell's cost profile across population
// sizes. The scaling contract: per-flow wall cost grows sublinearly
// with the population (a 50x population must cost far less than 50x
// per flow) and allocations per flow stay flat — both depend on the
// timer wheel, the position-indexed isolation scheduler, and the
// drained-queue array recycling pulling per-event cost out of the
// O(population) regime.
func BenchmarkManyFlow(b *testing.B) {
	for _, users := range []int{100, 1000, 5000} {
		b.Run(fmt.Sprint(users), func(b *testing.B) {
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			var events int64
			for i := 0; i < b.N; i++ {
				res, err := RunManyFlow(ManyFlowConfig{
					Users:    users,
					Duration: 2 * time.Second,
					Seed:     1,
				})
				if err != nil {
					b.Fatal(err)
				}
				events += res.Events
			}
			runtime.ReadMemStats(&ms1)
			allocs := float64(ms1.Mallocs - ms0.Mallocs)
			b.ReportMetric(allocs/float64(b.N)/float64(users), "allocs/flow")
			b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(users), "ns/flow")
		})
	}
}
