// Package core assembles the paper's experiments from the substrate
// packages: scenario construction helpers (dumbbell topologies with
// selectable queue disciplines), the Figure 1 isolation study, the
// Figure 2 M-Lab pipeline driver, the Figure 3 elasticity
// proof-of-concept, and the ablation studies DESIGN.md lists. Both the
// command-line tools and the benchmark harness call into this package
// so the printed tables come from a single implementation.
package core

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/transport"
)

// QueueKind selects the bottleneck queue discipline.
type QueueKind string

// Queue kinds supported by scenario construction.
const (
	QueueDropTail QueueKind = "droptail"
	QueueFQ       QueueKind = "fq"       // per-flow DRR fair queueing
	QueueFQCoDel  QueueKind = "fq_codel" // per-flow DRR + per-flow CoDel
	QueueSFQ      QueueKind = "sfq"      // stochastic fair queueing
	QueueUserIso  QueueKind = "user-iso" // per-user throttling + isolation
	QueueShaper   QueueKind = "shaper"   // aggregate token-bucket shaper
	QueuePolicer  QueueKind = "policer"  // aggregate token-bucket policer
)

// LinkSpec describes a bottleneck link.
type LinkSpec struct {
	// RateBps is the link rate in bits/s.
	RateBps float64
	// OneWayDelay is the propagation delay each way; the base RTT is
	// twice this.
	OneWayDelay time.Duration
	// Queue selects the discipline (default droptail).
	Queue QueueKind
	// BufferBDP sizes droptail/FQ buffers in bandwidth-delay products
	// (default 1).
	BufferBDP float64
	// ShapeRateBps is the shaper/policer/per-user rate where
	// applicable (default RateBps/2).
	ShapeRateBps float64
	// Faults, when non-nil, wraps the discipline in the profile's
	// impairment chain (loss, reordering, jitter, outages), seeded by
	// FaultSeed for reproducible runs.
	Faults    *faults.Profile
	FaultSeed int64
}

func (s LinkSpec) norm() LinkSpec {
	if s.Queue == "" {
		s.Queue = QueueDropTail
	}
	if s.BufferBDP <= 0 {
		s.BufferBDP = 1
	}
	if s.ShapeRateBps <= 0 {
		s.ShapeRateBps = s.RateBps / 2
	}
	return s
}

// RTT returns the base round-trip time of the link.
func (s LinkSpec) RTT() time.Duration { return 2 * s.OneWayDelay }

// BuildQdisc constructs the discipline for the spec, wrapped in the
// spec's fault profile when one is set.
func BuildQdisc(s LinkSpec) sim.Qdisc {
	q := buildDiscipline(s)
	if s.Faults != nil {
		q = s.Faults.Wrap(q, s.FaultSeed)
	}
	return q
}

func buildDiscipline(s LinkSpec) sim.Qdisc {
	s = s.norm()
	rtt := s.RTT()
	bufBytes := int(s.RateBps / 8 * rtt.Seconds() * s.BufferBDP)
	if bufBytes < 4*sim.MSS {
		bufBytes = 4 * sim.MSS
	}
	switch s.Queue {
	case QueueFQ:
		return qdisc.NewDRR(qdisc.ByFlow, sim.MSS, bufBytes)
	case QueueFQCoDel:
		return qdisc.NewFQCoDel(qdisc.ByFlow, bufBytes)
	case QueueSFQ:
		return qdisc.NewSFQ(128, bufBytes, 1)
	case QueueUserIso:
		return qdisc.NewUserIsolation(s.ShapeRateBps, 16*sim.MSS, bufBytes)
	case QueueShaper:
		return qdisc.NewTokenBucketShaper(s.ShapeRateBps, 16*sim.MSS, bufBytes)
	case QueuePolicer:
		return qdisc.NewTokenBucketPolicer(s.ShapeRateBps, 16*sim.MSS)
	default:
		return qdisc.NewDropTail(bufBytes)
	}
}

// Dumbbell is a single-bottleneck scenario: every flow traverses one
// shared link; acknowledgments return after the same propagation
// delay.
type Dumbbell struct {
	Eng  *sim.Engine
	Link *sim.Link
	Spec LinkSpec
}

// NewDumbbell constructs the scenario.
func NewDumbbell(spec LinkSpec) *Dumbbell {
	spec = spec.norm()
	eng := &sim.Engine{}
	link := sim.NewLink(eng, "bottleneck", spec.RateBps, spec.OneWayDelay, BuildQdisc(spec))
	return &Dumbbell{Eng: eng, Link: link, Spec: spec}
}

// FlowConfig returns a transport config for a flow through the
// bottleneck with the given controller.
func (d *Dumbbell) FlowConfig(id, userID int, cc transport.CCA) transport.FlowConfig {
	return transport.FlowConfig{
		ID:          id,
		UserID:      userID,
		Path:        []*sim.Link{d.Link},
		ReturnDelay: d.Spec.OneWayDelay,
		CC:          cc,
	}
}

// AddBulk adds a persistently backlogged flow.
func (d *Dumbbell) AddBulk(id, userID int, cc transport.CCA) *transport.Flow {
	cfg := d.FlowConfig(id, userID, cc)
	cfg.Backlogged = true
	f := transport.NewFlow(d.Eng, cfg)
	f.Start()
	return f
}

// Run advances the scenario to the given virtual time.
func (d *Dumbbell) Run(until time.Duration) { d.Eng.Run(until) }

// FmtBps renders a rate in human units.
func FmtBps(b float64) string {
	switch {
	case b >= 1e9:
		return fmt.Sprintf("%.2f Gbit/s", b/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.2f Mbit/s", b/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.2f kbit/s", b/1e3)
	default:
		return fmt.Sprintf("%.0f bit/s", b)
	}
}
