// Package core assembles the paper's experiments from the substrate
// packages: scenario construction helpers (dumbbell topologies with
// selectable queue disciplines), the Figure 1 isolation study, the
// Figure 2 M-Lab pipeline driver, the Figure 3 elasticity
// proof-of-concept, and the ablation studies DESIGN.md lists. Both the
// command-line tools and the benchmark harness call into this package
// so the printed tables come from a single implementation.
package core

import (
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/transport"
)

// DefaultObs, when non-nil, is the observability scope scenarios fall
// back to when their LinkSpec carries none. It exists for command-line
// tools that set it exactly once at startup, before any scenario is
// constructed; it is read a single time when a topology is normalized
// (LinkSpec.norm) and never consulted again during a run. It must NOT
// be mutated after the first scenario starts: parallel sweep runners
// never touch it and instead thread a per-run *obs.Scope through every
// config's Obs field, which always takes precedence. A nil scope (the
// default) disables all tracing and metrics at a branch per event.
var DefaultObs *obs.Scope

// fallbackScope resolves an explicit per-run scope against the
// CLI-set package fallback. Every Run* entry point calls this once at
// run start so the global is read exactly once per run.
func fallbackScope(sc *obs.Scope) *obs.Scope {
	if sc != nil {
		return sc
	}
	return DefaultObs
}

// QueueKind selects the bottleneck queue discipline.
type QueueKind string

// Queue kinds supported by scenario construction.
const (
	QueueDropTail QueueKind = "droptail"
	QueueFQ       QueueKind = "fq"       // per-flow DRR fair queueing
	QueueFQCoDel  QueueKind = "fq_codel" // per-flow DRR + per-flow CoDel
	QueueSFQ      QueueKind = "sfq"      // stochastic fair queueing
	QueueUserIso  QueueKind = "user-iso" // per-user throttling + isolation
	QueueShaper   QueueKind = "shaper"   // aggregate token-bucket shaper
	QueuePolicer  QueueKind = "policer"  // aggregate token-bucket policer
)

// LinkSpec describes a bottleneck link.
type LinkSpec struct {
	// RateBps is the link rate in bits/s.
	RateBps float64
	// OneWayDelay is the propagation delay each way; the base RTT is
	// twice this.
	OneWayDelay time.Duration
	// Queue selects the discipline (default droptail).
	Queue QueueKind
	// BufferBDP sizes droptail/FQ buffers in bandwidth-delay products
	// (default 1).
	BufferBDP float64
	// ShapeRateBps is the shaper/policer/per-user rate where
	// applicable (default RateBps/2).
	ShapeRateBps float64
	// Faults, when non-nil, wraps the discipline in the profile's
	// impairment chain (loss, reordering, jitter, outages), seeded by
	// FaultSeed for reproducible runs.
	Faults    *faults.Profile
	FaultSeed int64
	// Obs, when non-nil, receives the scenario's trace events and
	// metrics registrations. When nil, DefaultObs is captured once at
	// normalization time. Excluded from JSON so declarative scenario
	// specs and results stay serializable.
	Obs *obs.Scope `json:"-"`
}

// scope returns the spec's observability scope (possibly nil). The
// DefaultObs fallback is resolved once in norm(), not here, so a run's
// scope is fixed at construction.
func (s LinkSpec) scope() *obs.Scope { return s.Obs }

func (s LinkSpec) norm() LinkSpec {
	if s.Queue == "" {
		s.Queue = QueueDropTail
	}
	if s.BufferBDP <= 0 {
		s.BufferBDP = 1
	}
	if s.ShapeRateBps <= 0 {
		s.ShapeRateBps = s.RateBps / 2
	}
	if s.Obs == nil {
		s.Obs = DefaultObs
	}
	return s
}

// RTT returns the base round-trip time of the link.
func (s LinkSpec) RTT() time.Duration { return 2 * s.OneWayDelay }

// BuildQdisc constructs the discipline for the spec, wrapped in the
// spec's fault profile when one is set. AQM disciplines and fault
// injectors are pointed at the spec's tracer so their drops and
// activations surface in the event stream.
func BuildQdisc(s LinkSpec) sim.Qdisc {
	s = s.norm()
	q := buildDiscipline(s)
	if tr := s.scope().T(); tr != nil {
		switch d := q.(type) {
		case *qdisc.CoDel:
			d.Trace = tr
		case *qdisc.RED:
			d.Trace = tr
		case *qdisc.FQCoDel:
			d.Trace = tr
		}
	}
	if s.Faults != nil {
		ch := s.Faults.Build(q, s.FaultSeed)
		ch.SetTracer(s.scope().T())
		q = ch.Qdisc()
	}
	return q
}

func buildDiscipline(s LinkSpec) sim.Qdisc {
	s = s.norm()
	rtt := s.RTT()
	bufBytes := int(s.RateBps / 8 * rtt.Seconds() * s.BufferBDP)
	if bufBytes < 4*sim.MSS {
		bufBytes = 4 * sim.MSS
	}
	switch s.Queue {
	case QueueFQ:
		return qdisc.NewDRR(qdisc.ByFlow, sim.MSS, bufBytes)
	case QueueFQCoDel:
		return qdisc.NewFQCoDel(qdisc.ByFlow, bufBytes)
	case QueueSFQ:
		return qdisc.NewSFQ(128, bufBytes, 1)
	case QueueUserIso:
		return qdisc.NewUserIsolation(s.ShapeRateBps, 16*sim.MSS, bufBytes)
	case QueueShaper:
		return qdisc.NewTokenBucketShaper(s.ShapeRateBps, 16*sim.MSS, bufBytes)
	case QueuePolicer:
		return qdisc.NewTokenBucketPolicer(s.ShapeRateBps, 16*sim.MSS)
	default:
		return qdisc.NewDropTail(bufBytes)
	}
}

// Dumbbell is a single-bottleneck scenario: every flow traverses one
// shared link; acknowledgments return after the same propagation
// delay.
type Dumbbell struct {
	Eng  *sim.Engine
	Link *sim.Link
	Spec LinkSpec
}

// NewDumbbell constructs the scenario. When the spec (or DefaultObs)
// carries an observability scope, the engine, link, and every flow
// built through FlowConfig are wired into it.
func NewDumbbell(spec LinkSpec) *Dumbbell {
	spec = spec.norm()
	eng := &sim.Engine{}
	link := sim.NewLink(eng, "bottleneck", spec.RateBps, spec.OneWayDelay, BuildQdisc(spec))
	if sc := spec.scope(); sc != nil {
		link.Trace = sc.T()
		eng.RegisterMetrics(sc.R(), "")
		link.RegisterMetrics(sc.R())
	}
	return &Dumbbell{Eng: eng, Link: link, Spec: spec}
}

// FlowConfig returns a transport config for a flow through the
// bottleneck with the given controller.
func (d *Dumbbell) FlowConfig(id, userID int, cc transport.CCA) transport.FlowConfig {
	sc := d.Spec.scope()
	return transport.FlowConfig{
		ID:          id,
		UserID:      userID,
		Path:        []*sim.Link{d.Link},
		ReturnDelay: d.Spec.OneWayDelay,
		CC:          cc,
		Trace:       sc.T(),
		Metrics:     sc.R(),
	}
}

// AddBulk adds a persistently backlogged flow.
func (d *Dumbbell) AddBulk(id, userID int, cc transport.CCA) *transport.Flow {
	cfg := d.FlowConfig(id, userID, cc)
	cfg.Backlogged = true
	f := transport.NewFlow(d.Eng, cfg)
	f.Start()
	return f
}

// Run advances the scenario to the given virtual time.
func (d *Dumbbell) Run(until time.Duration) { d.Eng.Run(until) }

// FmtBps renders a rate in human units.
func FmtBps(b float64) string {
	switch {
	case b >= 1e9:
		return fmt.Sprintf("%.2f Gbit/s", b/1e9)
	case b >= 1e6:
		return fmt.Sprintf("%.2f Mbit/s", b/1e6)
	case b >= 1e3:
		return fmt.Sprintf("%.2f kbit/s", b/1e3)
	default:
		return fmt.Sprintf("%.0f bit/s", b)
	}
}
