package core

import (
	"encoding/json"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/traffic"
)

// TestHuntCellDeterminism: the cell is the hunt's fitness function, so
// two runs of the same config — inline faults, oscillating capacity,
// short flows and all — must agree to the last bit.
func TestHuntCellDeterminism(t *testing.T) {
	cfg := HuntCellConfig{
		VictimCCA: "reno",
		Cross: []traffic.Phase{
			{Kind: "cubic", DurS: 5},
			{Kind: "short", DurS: 4},
			{Kind: "idle", DurS: 3},
		},
		RateBps:     12e6,
		OneWayDelay: 10 * time.Millisecond,
		Seed:        7,
		FaultSeed:   7,
		Fault: &faults.Config{
			GE:         &faults.GESpec{PGoodBad: 0.01, PBadGood: 0.3, LossBad: 0.5},
			Outages:    []faults.WindowSpec{{StartS: 6, EndS: 6.5}},
			OscAmp:     0.3,
			OscPeriodS: 2,
			OscPhase:   0.25,
		},
	}
	run := func() []byte {
		res, err := RunHuntCell(cfg)
		if err != nil {
			t.Fatalf("RunHuntCell: %v", err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("non-deterministic huntcell result:\n%s\nvs\n%s", a, b)
	}
}

// TestHuntCellVictimMetrics checks the victim-mode shape: contiguous
// phase bounds and aggregates inside their definitional ranges.
func TestHuntCellVictimMetrics(t *testing.T) {
	res, err := RunHuntCell(HuntCellConfig{
		Cross: []traffic.Phase{
			{Kind: "bbr", DurS: 8},
			{Kind: "idle", DurS: 4},
		},
		Seed: 1,
	})
	if err != nil {
		t.Fatalf("RunHuntCell: %v", err)
	}
	if len(res.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(res.Phases))
	}
	var at time.Duration
	for i, p := range res.Phases {
		if p.Start != at {
			t.Errorf("phase %d starts at %v, want %v", i, p.Start, at)
		}
		at = p.End
	}
	if at != 12*time.Second {
		t.Errorf("schedule ends at %v, want 12s", at)
	}
	if res.Harm < 0 || res.Harm > 1 {
		t.Errorf("harm = %v out of [0, 1]", res.Harm)
	}
	if res.Jain <= 0 || res.Jain > 1 {
		t.Errorf("jain = %v out of (0, 1]", res.Jain)
	}
	if res.MainTputBps <= 0 {
		t.Errorf("main throughput = %v, want > 0", res.MainTputBps)
	}
	if res.Util <= 0 || res.Util > 1.5 {
		t.Errorf("util = %v implausible", res.Util)
	}
	// The bbr phase should take a visible bite out of the victim
	// relative to the idle phase.
	if res.Phases[0].MainTputBps >= res.Phases[1].MainTputBps {
		t.Errorf("victim under bbr (%v) not slower than idle (%v)",
			res.Phases[0].MainTputBps, res.Phases[1].MainTputBps)
	}
}

// TestHuntCellProbeVerdicts: probe mode must deliver per-phase verdicts
// with the schedule's ground truth attached.
func TestHuntCellProbeVerdicts(t *testing.T) {
	res, err := RunHuntCell(HuntCellConfig{
		Probe: true,
		Cross: []traffic.Phase{
			{Kind: "reno", DurS: 15},
			{Kind: "cbr", DurS: 15},
		},
		Seed: 1,
	})
	if err != nil {
		t.Fatalf("RunHuntCell: %v", err)
	}
	if !res.Phases[0].TruthElastic || res.Phases[1].TruthElastic {
		t.Errorf("ground truth wrong: reno=%v cbr=%v",
			res.Phases[0].TruthElastic, res.Phases[1].TruthElastic)
	}
	if res.Decided == 0 {
		t.Fatal("no phase received a verdict in 15s phases")
	}
	for i, p := range res.Phases {
		if p.Decided && p.Windows == 0 {
			t.Errorf("phase %d decided with zero windows", i)
		}
	}
	if res.Misclassified > res.Decided {
		t.Errorf("misclassified %d > decided %d", res.Misclassified, res.Decided)
	}
}

// TestHuntCellInlineFaultPrecedence: a non-nil inline Fault must win
// over FaultProfile — even a bogus profile name is never looked up.
func TestHuntCellInlineFaultPrecedence(t *testing.T) {
	_, err := RunHuntCell(HuntCellConfig{
		Cross:        []traffic.Phase{{Kind: "idle", DurS: 2}},
		Fault:        &faults.Config{LossProb: 0.01},
		FaultProfile: "no-such-profile",
	})
	if err != nil {
		t.Fatalf("inline fault should shadow the bogus profile name: %v", err)
	}
}

// TestHuntCellErrors exercises the validation edges.
func TestHuntCellErrors(t *testing.T) {
	cases := []struct {
		name string
		cfg  HuntCellConfig
	}{
		{"empty schedule", HuntCellConfig{}},
		{"unknown kind", HuntCellConfig{Cross: []traffic.Phase{{Kind: "warez", DurS: 5}}}},
		{"bad duration", HuntCellConfig{Cross: []traffic.Phase{{Kind: "reno", DurS: -1}}}},
		{"bad victim", HuntCellConfig{
			VictimCCA: "no-such-cca",
			Cross:     []traffic.Phase{{Kind: "idle", DurS: 2}},
		}},
		{"bad fault", HuntCellConfig{
			Cross: []traffic.Phase{{Kind: "idle", DurS: 2}},
			Fault: &faults.Config{LossProb: 1.5},
		}},
		{"bad profile", HuntCellConfig{
			Cross:        []traffic.Phase{{Kind: "idle", DurS: 2}},
			FaultProfile: "no-such-profile",
		}},
	}
	for _, tc := range cases {
		if _, err := RunHuntCell(tc.cfg); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}
