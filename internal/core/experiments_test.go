package core

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestFig1IsolationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	res, err := RunFig1(Fig1Config{Duration: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	// FIFO: BBR takes well over half against Reno (Ware et al.).
	fifo := res.Row("reno", "bbr", QueueDropTail)
	if fifo == nil || fifo.Share2 < 0.6 {
		t.Errorf("BBR FIFO share = %+v, want > 0.6", fifo)
	}
	// FQ and per-user isolation: near-perfect fairness for every pair.
	for _, pair := range res.Config.Pairs {
		for _, q := range []QueueKind{QueueFQ, QueueUserIso} {
			row := res.Row(pair[0], pair[1], q)
			if row == nil {
				t.Fatalf("missing row %v/%v", pair, q)
			}
			if row.Jain < 0.99 {
				t.Errorf("%s/%s under %s: jain = %.3f, want ~1", pair[0], pair[1], q, row.Jain)
			}
			if row.Harm1 > 0.05 {
				t.Errorf("%s/%s under %s: harm = %.3f", pair[0], pair[1], q, row.Harm1)
			}
		}
	}
	var buf bytes.Buffer
	res.WriteTable(&buf)
	if !strings.Contains(buf.String(), "reno/bbr") {
		t.Error("table missing rows")
	}
}

func TestFig2PipelineShape(t *testing.T) {
	res, err := RunFig2(Fig2Config{})
	if err != nil {
		t.Fatal(err)
	}
	an := res.Analysis
	if an.Total != 9984 {
		t.Fatalf("total = %d, want the paper's 9,984", an.Total)
	}
	// Majority excluded before the change-point stage (consistent with
	// Araújo et al.: most traffic is app/host/receiver limited).
	cand := an.ByCat["stable"] + an.ByCat["level-shift"]
	if frac := float64(cand) / float64(an.Total); frac > 0.45 {
		t.Errorf("candidate fraction = %.2f, want < 0.45", frac)
	}
	if res.Validation.Recall() < 0.7 || res.Validation.Precision() < 0.8 {
		t.Errorf("validation = %+v", res.Validation)
	}
	var buf bytes.Buffer
	res.WriteReport(&buf)
	if !strings.Contains(buf.String(), "level-shift") {
		t.Error("report incomplete")
	}
}

func TestOracleAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	res, err := RunOracle(OracleConfig{Trials: 12, Duration: 30 * time.Second, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Score.Accuracy() < 0.75 {
		var buf bytes.Buffer
		res.WriteTable(&buf)
		t.Errorf("oracle accuracy = %.2f\n%s", res.Score.Accuracy(), buf.String())
	}
}

func TestPulseSweepShowsFrequencyMatters(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	res, err := RunPulseSweep(PulseSweepConfig{
		Freqs: []float64{2, 10}, Amps: []float64{0.25}, Duration: 25 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sep2, sep10 float64
	for _, r := range res.Rows {
		if r.FreqHz == 2 {
			sep2 = r.Separation
		}
		if r.FreqHz == 10 {
			sep10 = r.Separation
		}
	}
	// 10 Hz pulses are inside the loaded RTT: separation collapses.
	if sep2 <= sep10 {
		t.Errorf("separation at 2Hz (%.3f) should beat 10Hz (%.3f)", sep2, sep10)
	}
	if sep2 < 0.3 {
		t.Errorf("2Hz separation = %.3f, want strong", sep2)
	}
}

func TestSubPacketRegime(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	res, err := RunSubPacket(SubPacketConfig{
		Rates: []float64{256e3, 4e6}, Flows: 8, Duration: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatal("missing rows")
	}
	thin, fat := res.Rows[0], res.Rows[1]
	// The sub-packet link is much less fair than the fat one (Chen et
	// al.'s timeout-driven starvation).
	if thin.Jain >= fat.Jain {
		t.Errorf("jain thin=%.3f fat=%.3f, want thin < fat", thin.Jain, fat.Jain)
	}
	if thin.Timeouts == 0 {
		t.Error("expected timeouts on the sub-packet link")
	}
}

func TestJitterUnderShaping(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	res, err := RunJitter(JitterConfig{Duration: 25 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	byMode := map[string]JitterRow{}
	for _, r := range res.Rows {
		byMode[r.Shaping] = r
	}
	// Fair queueing protects the smooth flow's delay; FIFO does not.
	if byMode["fq"].P99Ms >= byMode["fifo"].P99Ms {
		t.Errorf("fq p99 (%.1f) should beat fifo p99 (%.1f)",
			byMode["fq"].P99Ms, byMode["fifo"].P99Ms)
	}
	// §5.2: the token-bucket shaper still exposes the smooth flow to
	// burst-induced jitter.
	if byMode["shaper"].JitterMs < byMode["fq"].JitterMs {
		t.Errorf("shaper jitter (%.1f) should exceed fq jitter (%.1f)",
			byMode["shaper"].JitterMs, byMode["fq"].JitterMs)
	}
}

func TestCellularTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	res, err := RunCellular(CellularConfig{Duration: 40 * time.Second, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]CellularRow{}
	for _, r := range res.Rows {
		rows[r.CCA] = r
	}
	// §5.1's trade-off: loss-based CCAs fill the deep buffer (high
	// delay, high utilization); delay-based CCAs hold delay down.
	if rows["cubic"].P95DelayMs <= rows["copa"].P95DelayMs {
		t.Errorf("cubic p95 (%.0fms) should exceed copa p95 (%.0fms)",
			rows["cubic"].P95DelayMs, rows["copa"].P95DelayMs)
	}
	if rows["cubic"].Utilization < 0.8 {
		t.Errorf("cubic utilization = %.2f", rows["cubic"].Utilization)
	}
	if rows["copa"].SelfInflictedMs > 100 {
		t.Errorf("copa self-inflicted delay = %.0fms", rows["copa"].SelfInflictedMs)
	}
	if rows["vegas"].Utilization < 0.5 {
		t.Errorf("vegas utilization = %.2f", rows["vegas"].Utilization)
	}
}

func TestAccessOnlyContentionPoint(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	res, err := RunAccess(AccessConfig{Duration: 20 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.InterUserPairs != 0 {
		t.Errorf("inter-user contending pairs = %d, want 0 (core is provisioned)", res.InterUserPairs)
	}
	if res.IntraUserPairs != res.Config.Users {
		t.Errorf("intra-user contending pairs = %d, want %d", res.IntraUserPairs, res.Config.Users)
	}
	if res.CoreUtilization > 0.7 {
		t.Errorf("core utilization = %.2f, should stay under the 60-70%% planning bound", res.CoreUtilization)
	}
	// Every user saturates their own access link regardless.
	for u, tput := range res.PerUserTputBps {
		if tput < 0.9*res.Config.AccessRateBps {
			t.Errorf("user %d aggregate = %.1f Mbit/s", u, tput/1e6)
		}
	}
}

func TestTSLPComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	res, err := RunTSLP(TSLPConfig{Duration: 35 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]TSLPRow{}
	for _, r := range res.Rows {
		rows[r.Scenario] = r
	}
	// TSLP flags both loaded scenarios; only the probe separates them.
	if !rows["contention"].TSLPCongested || !rows["aggregate"].TSLPCongested {
		t.Error("TSLP should flag both loaded scenarios as congested")
	}
	if rows["idle"].TSLPCongested {
		t.Error("TSLP flagged an idle link")
	}
	if !rows["contention"].ProbeElastic {
		t.Errorf("probe missed the contention scenario (eta=%.3f)", rows["contention"].ProbeEta)
	}
	if rows["aggregate"].ProbeElastic {
		t.Errorf("probe called the aggregate elastic (eta=%.3f)", rows["aggregate"].ProbeEta)
	}
	if !rows["aggregate"].ProbeOverloaded {
		t.Error("aggregate should be flagged overloaded")
	}
	if rows["idle"].ProbeElastic || rows["idle"].ProbeOverloaded {
		t.Error("idle link misclassified")
	}
}
