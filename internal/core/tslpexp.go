package core

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/cca"
	"repro/internal/nimbus"
	"repro/internal/obs"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/internal/transport"
	"repro/internal/tslp"
)

// TSLPConfig parameterizes the congestion-vs-contention comparison:
// the paper's §1 distinction made measurable. Three scenarios load the
// same link — backlogged CCA flows (contention), an aggregate of short
// application-limited flows (congestion without contention), and an
// idle link — and two instruments look at it: TSLP (latency
// inflation) and the Nimbus elasticity probe.
type TSLPConfig struct {
	// RateBps is the link rate (default 48 Mbit/s).
	RateBps float64
	// OneWayDelay is the propagation delay (default 25ms).
	OneWayDelay time.Duration
	// Duration is each scenario's length (default 40s).
	Duration time.Duration
	// Seed drives workload randomness.
	Seed int64
	// Obs, when non-nil, receives every scenario's trace events and
	// metric registrations.
	Obs *obs.Scope `json:"-"`
}

func (c TSLPConfig) norm() TSLPConfig {
	if c.RateBps <= 0 {
		c.RateBps = 48e6
	}
	if c.OneWayDelay <= 0 {
		c.OneWayDelay = 25 * time.Millisecond
	}
	if c.Duration <= 0 {
		c.Duration = 40 * time.Second
	}
	return c
}

// TSLPRow is one scenario's verdicts.
type TSLPRow struct {
	Scenario string
	// TruthContention is the ground truth: backlogged CCA-driven flows
	// share the queue.
	TruthContention bool
	// TSLPCongested is TSLP's verdict (latency inflation).
	TSLPCongested bool
	// TSLPP90Ms is the p90 latency differential.
	TSLPP90Ms float64
	// ProbeElastic is the elasticity probe's verdict.
	ProbeElastic bool
	// ProbeOverloaded flags the non-yielding regime: the windowed
	// cross-traffic estimate persistently exceeds the link capacity,
	// which no CCA-controlled traffic does (it would back off). The
	// spectral eta is unreliable there, and the semantically correct
	// reading is "congestion managed upstream, not flow contention".
	ProbeOverloaded bool
	// ProbeEta is the mean elasticity.
	ProbeEta float64
}

// TSLPResult is the experiment outcome.
type TSLPResult struct {
	Config TSLPConfig
	Rows   []TSLPRow
}

// RunTSLP executes the comparison.
func RunTSLP(cfg TSLPConfig) (*TSLPResult, error) {
	cfg = cfg.norm()
	cfg.Obs = fallbackScope(cfg.Obs)
	res := &TSLPResult{Config: cfg}
	for _, sc := range []string{"contention", "aggregate", "idle"} {
		row, err := runTSLPScenario(cfg, sc)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// addTSLPScenarioTraffic installs the scenario's cross traffic on a
// dumbbell. It returns whether the scenario's ground truth is CCA
// contention.
func addTSLPScenarioTraffic(d *Dumbbell, cfg TSLPConfig, scenario string, seed int64) (bool, error) {
	rng := rand.New(rand.NewSource(seed))
	switch scenario {
	case "contention":
		for i := 0; i < 2; i++ {
			cc, err := cca.New([]string{"reno", "cubic"}[i])
			if err != nil {
				return false, err
			}
			f := transport.NewFlow(d.Eng, transport.FlowConfig{
				ID: 2 + i, UserID: 1, Path: d.FlowConfig(0, 0, nil).Path,
				ReturnDelay: cfg.OneWayDelay, CC: cc, Backlogged: true,
			})
			f.Start()
		}
		return true, nil
	case "aggregate":
		// A dense aggregate of IW-bound web flows whose offered load
		// exceeds the link: congestion with no flow long enough for
		// CCA dynamics to govern its share — the overloaded
		// peering-link scenario from §1.
		traffic.NewShortFlows(d.Eng, traffic.ShortFlowsConfig{
			ArrivalRate: 3600,
			Sizes:       traffic.FixedSize(3000), // 2 packets: inside IW
			Path:        d.FlowConfig(0, 0, nil).Path,
			ReturnDelay: cfg.OneWayDelay,
			UserID:      2,
			NewCC:       func() transport.CCA { return cca.NewRenoCC() },
			BaseFlowID:  1000,
			Rand:        rng,
			OpenLoop:    true, // fire-and-forget bursts: exogenous load
		})
		return false, nil
	case "idle":
		return false, nil
	default:
		return false, fmt.Errorf("core: unknown tslp scenario %q", scenario)
	}
}

// runTSLPScenario measures the scenario with each instrument in its
// own simulation: TSLP is a third-party passive observer, while the
// elasticity probe is an active participant — running them together
// would have TSLP measuring the probe's own standing queue.
func runTSLPScenario(cfg TSLPConfig, scenario string) (TSLPRow, error) {
	row := TSLPRow{Scenario: scenario}
	warm := cfg.Duration / 4

	// Instrument 1: TSLP alone with the scenario traffic.
	d1 := NewDumbbell(LinkSpec{RateBps: cfg.RateBps, OneWayDelay: cfg.OneWayDelay, BufferBDP: 1, Obs: cfg.Obs})
	truth, err := addTSLPScenarioTraffic(d1, cfg, scenario, cfg.Seed)
	if err != nil {
		return row, err
	}
	row.TruthContention = truth
	prober := tslp.NewProber(d1.Eng, d1.Link, 9999, tslp.Config{})
	d1.Run(cfg.Duration)
	v := prober.Verdict(warm, cfg.Duration)
	row.TSLPCongested = v.Congested
	row.TSLPP90Ms = v.P90Ms

	// Instrument 2: the active elasticity probe with the same traffic.
	d2 := NewDumbbell(LinkSpec{RateBps: cfg.RateBps, OneWayDelay: cfg.OneWayDelay, BufferBDP: 1, Obs: cfg.Obs})
	if _, err := addTSLPScenarioTraffic(d2, cfg, scenario, cfg.Seed); err != nil {
		return row, err
	}
	probeCC := nimbus.NewCCA(nimbus.Config{Mu: cfg.RateBps, PulseFreq: 2})
	d2.AddBulk(1, 1, probeCC)
	d2.Run(cfg.Duration)
	etas := probeCC.Est.Elasticity.Window(warm, cfg.Duration)
	if len(etas) > 0 {
		row.ProbeEta = stats.Mean(etas)
		elastic := 0
		for _, e := range etas {
			if e >= probeCC.Est.Config().EtaThreshold {
				elastic++
			}
		}
		row.ProbeElastic = elastic*2 > len(etas)
	}
	if probeCC.Est.OverloadFactor() > 1.05 {
		row.ProbeOverloaded = true
		row.ProbeElastic = false
	}
	return row, nil
}

// WriteTable renders the comparison. The key row is "aggregate":
// TSLP flags congestion, the elasticity probe correctly reports no
// CCA contention.
func (r *TSLPResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "exp-tslp (§4): congestion detection vs contention detection on a %s link\n",
		FmtBps(r.Config.RateBps))
	fmt.Fprintf(w, "%-11s %10s %14s %10s %13s %9s\n",
		"scenario", "truth", "tslp-verdict", "tslp-p90", "probe-verdict", "mean-eta")
	for _, row := range r.Rows {
		tslpV := "quiet"
		if row.TSLPCongested {
			tslpV = "congested"
		}
		probeV := "inelastic"
		if row.ProbeElastic {
			probeV = "ELASTIC"
		}
		if row.ProbeOverloaded {
			probeV = "overloaded"
		}
		truth := "none"
		if row.TruthContention {
			truth = "contention"
		}
		fmt.Fprintf(w, "%-11s %10s %14s %8.1fms %13s %9.3f\n",
			row.Scenario, truth, tslpV, row.TSLPP90Ms, probeV, row.ProbeEta)
	}
}
