package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cca"
	"repro/internal/contention"
	"repro/internal/obs"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/transport"
)

// AccessConfig parameterizes the §2.2 experiment: most paths are
// short, core/peering links are provisioned well below saturation
// (ISPs keep utilization under 60-70%, §2.1), so the *only* place the
// paper's three contention prerequisites can all hold is the access
// link — and only between one user's own flows.
type AccessConfig struct {
	// AccessRateBps is each subscriber's access rate (default
	// 50 Mbit/s).
	AccessRateBps float64
	// CoreRateBps is the shared core/peering link rate (default
	// 1 Gbit/s — provisioned for many subscribers).
	CoreRateBps float64
	// Users is the number of subscribers, two flows each (default 4).
	Users int
	// Duration is the run length (default 30s).
	Duration time.Duration
	// Obs, when non-nil, receives the run's trace events and metric
	// registrations.
	Obs *obs.Scope `json:"-"`
}

func (c AccessConfig) norm() AccessConfig {
	if c.AccessRateBps <= 0 {
		c.AccessRateBps = 50e6
	}
	if c.CoreRateBps <= 0 {
		c.CoreRateBps = 1e9
	}
	if c.Users <= 0 {
		c.Users = 4
	}
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	return c
}

// AccessResult is the experiment outcome.
type AccessResult struct {
	Config AccessConfig
	// CoreUtilization is the shared link's busy fraction.
	CoreUtilization float64
	// IntraUserPairs and InterUserPairs count flow pairs satisfying
	// all three contention prerequisites, by relationship.
	IntraUserPairs, InterUserPairs int
	// PairsSharingCore counts pairs sharing the core link at all.
	PairsSharingCore int
	// PerUserTputBps is each user's aggregate throughput.
	PerUserTputBps []float64
}

// RunAccess builds the topology — per-user access links feeding one
// overprovisioned core link — loads every user with two backlogged
// flows (the worst case for contention), and evaluates the paper's
// prerequisites over every flow pair plus the realized utilizations.
// The error return exists for signature uniformity with the other
// registered scenarios.
func RunAccess(cfg AccessConfig) (*AccessResult, error) {
	cfg = cfg.norm()
	cfg.Obs = fallbackScope(cfg.Obs)
	eng := &sim.Engine{}

	core := sim.NewLink(eng, "core", cfg.CoreRateBps, 5*time.Millisecond,
		qdisc.NewDropTailBDP(cfg.CoreRateBps, 30*time.Millisecond, 1))
	wireEngineObs(cfg.Obs, eng, core)

	type flowInfo struct {
		flow *transport.Flow
		info *contention.FlowInfo
		user int
	}
	var flows []flowInfo
	for u := 0; u < cfg.Users; u++ {
		access := sim.NewLink(eng, fmt.Sprintf("access-%d", u), cfg.AccessRateBps,
			10*time.Millisecond, qdisc.NewDropTailBDP(cfg.AccessRateBps, 30*time.Millisecond, 1))
		access.Trace = cfg.Obs.T()
		if cfg.Obs.R() != nil {
			access.RegisterMetrics(cfg.Obs.R())
		}
		for k := 0; k < 2; k++ {
			id := u*10 + k + 1
			var cc transport.CCA
			if k == 0 {
				cc = cca.NewCubicCC()
			} else {
				cc = cca.NewRenoCC()
			}
			f := transport.NewFlow(eng, transport.FlowConfig{
				ID: id, UserID: u,
				Path:        []*sim.Link{access, core},
				ReturnDelay: 15 * time.Millisecond,
				CC:          cc, Backlogged: true,
				Trace:   cfg.Obs.T(),
				Metrics: cfg.Obs.R(),
			})
			f.Start()
			flows = append(flows, flowInfo{
				flow: f,
				user: u,
				info: &contention.FlowInfo{ID: id, Path: []*sim.Link{access, core}},
			})
		}
	}
	eng.Run(cfg.Duration)

	res := &AccessResult{Config: cfg}
	res.CoreUtilization = core.Utilization(eng.Now())
	for i := 0; i < len(flows); i++ {
		for j := i + 1; j < len(flows); j++ {
			a, b := flows[i], flows[j]
			shared := false
			for _, la := range a.info.Path {
				if la == core {
					for _, lb := range b.info.Path {
						if lb == core {
							shared = true
						}
					}
				}
			}
			if shared {
				res.PairsSharingCore++
			}
			if contention.Contend(a.info, b.info) {
				if a.user == b.user {
					res.IntraUserPairs++
				} else {
					res.InterUserPairs++
				}
			}
		}
	}
	warm := cfg.Duration / 4
	perUser := make([]float64, cfg.Users)
	for _, fi := range flows {
		perUser[fi.user] += fi.flow.Throughput(warm, cfg.Duration)
	}
	res.PerUserTputBps = perUser
	return res, nil
}

// WriteTable renders the outcome.
func (r *AccessResult) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "exp-access (§2.2): %d users x 2 backlogged flows, %s access links behind a %s core\n",
		r.Config.Users, FmtBps(r.Config.AccessRateBps), FmtBps(r.Config.CoreRateBps))
	fmt.Fprintf(w, "core utilization:                  %5.1f%% (provisioned, never a bottleneck)\n",
		100*r.CoreUtilization)
	fmt.Fprintf(w, "flow pairs sharing the core:       %d\n", r.PairsSharingCore)
	fmt.Fprintf(w, "pairs meeting all 3 prerequisites: %d intra-user, %d inter-user\n",
		r.IntraUserPairs, r.InterUserPairs)
	for u, t := range r.PerUserTputBps {
		fmt.Fprintf(w, "user %d aggregate: %s\n", u, FmtBps(t))
	}
}
