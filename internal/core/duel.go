package core

import (
	"fmt"
	"io"
	"time"

	"repro/internal/cca"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/stats"
)

// DuelConfig parameterizes the atomic contention cell every grid sweep
// is built from: two named CCAs contend on one bottleneck under a
// chosen queue discipline, optionally through a fault profile. Figure
// 1 is a grid of these cells on a clean link; the CCA x queue x fault
// sweeps extend the same cell across impaired paths.
type DuelConfig struct {
	// CCA1 and CCA2 name the contenders (see cca.New).
	CCA1, CCA2 string
	// RateBps is the bottleneck rate (default 48 Mbit/s).
	RateBps float64
	// OneWayDelay is the propagation delay (default 20ms -> 40ms RTT).
	OneWayDelay time.Duration
	// Queue selects the discipline (default droptail).
	Queue QueueKind
	// BufferBDP sizes the buffer (default 2, a bufferbloated access
	// link).
	BufferBDP float64
	// ShapeRateBps is the per-user/shaper rate where the discipline
	// uses one (default half the link).
	ShapeRateBps float64
	// Duration is the scenario length (default 30s).
	Duration time.Duration
	// WarmupFrac excludes the initial fraction from throughput
	// averaging (default 1/3).
	WarmupFrac float64
	// FaultProfile, when non-empty, names a faults.Profile to impose
	// on the bottleneck; FaultSeed drives its injectors.
	FaultProfile string
	FaultSeed    int64
	// Obs, when non-nil, receives the run's trace events and metric
	// registrations.
	Obs *obs.Scope `json:"-"`
}

func (c DuelConfig) norm() DuelConfig {
	if c.RateBps <= 0 {
		c.RateBps = 48e6
	}
	if c.Queue == "" {
		c.Queue = QueueDropTail
	}
	if c.OneWayDelay <= 0 {
		c.OneWayDelay = 20 * time.Millisecond
	}
	if c.BufferBDP <= 0 {
		c.BufferBDP = 2
	}
	if c.Duration <= 0 {
		c.Duration = 30 * time.Second
	}
	if c.WarmupFrac <= 0 || c.WarmupFrac >= 1 {
		c.WarmupFrac = 1.0 / 3
	}
	return c
}

// DuelResult is one cell's outcome.
type DuelResult struct {
	Config DuelConfig
	// Tput1Bps and Tput2Bps are the flows' post-warmup throughputs.
	Tput1Bps, Tput2Bps float64
	// Share2 is flow 2's fraction of the combined throughput.
	Share2 float64
	// Jain is Jain's fairness index over the two allocations.
	Jain float64
	// Harm1 is the harm flow 1 suffers relative to a fair half-link
	// share.
	Harm1 float64
}

// RunDuel executes one contention cell.
func RunDuel(cfg DuelConfig) (*DuelResult, error) {
	cfg = cfg.norm()
	cfg.Obs = fallbackScope(cfg.Obs)
	cc1, err := cca.New(cfg.CCA1)
	if err != nil {
		return nil, fmt.Errorf("core: duel: %w", err)
	}
	cc2, err := cca.New(cfg.CCA2)
	if err != nil {
		return nil, fmt.Errorf("core: duel: %w", err)
	}
	spec := LinkSpec{
		RateBps:      cfg.RateBps,
		OneWayDelay:  cfg.OneWayDelay,
		Queue:        cfg.Queue,
		BufferBDP:    cfg.BufferBDP,
		ShapeRateBps: cfg.ShapeRateBps,
		FaultSeed:    cfg.FaultSeed,
		Obs:          cfg.Obs,
	}
	if cfg.FaultProfile != "" {
		p, err := faults.Lookup(cfg.FaultProfile)
		if err != nil {
			return nil, fmt.Errorf("core: duel: %w", err)
		}
		spec.Faults = &p
	}
	d := NewDumbbell(spec)
	f1 := d.AddBulk(1, 1, cc1)
	f2 := d.AddBulk(2, 2, cc2)
	d.Run(cfg.Duration)

	from := time.Duration(cfg.WarmupFrac * float64(cfg.Duration))
	t1 := f1.Throughput(from, cfg.Duration)
	t2 := f2.Throughput(from, cfg.Duration)
	res := &DuelResult{
		Config:   cfg,
		Tput1Bps: t1,
		Tput2Bps: t2,
		Jain:     stats.JainIndex([]float64{t1, t2}),
		Harm1:    stats.Harm(cfg.RateBps/2, t1),
	}
	if total := t1 + t2; total > 0 {
		res.Share2 = t2 / total
	}
	return res, nil
}

// WriteTable renders the cell.
func (r *DuelResult) WriteTable(w io.Writer) {
	c := r.Config
	profile := c.FaultProfile
	if profile == "" {
		profile = "clean"
	}
	fmt.Fprintf(w, "duel: %s vs %s on a %s link (%v RTT), queue=%s, faults=%s\n",
		c.CCA1, c.CCA2, FmtBps(c.RateBps), 2*c.OneWayDelay, string(c.Queue), profile)
	fmt.Fprintf(w, "%-14s %12s %12s %8s %7s %7s\n",
		"pair", "flow1", "flow2", "share2", "jain", "harm1")
	fmt.Fprintf(w, "%-14s %12s %12s %7.1f%% %7.3f %7.3f\n",
		c.CCA1+"/"+c.CCA2, FmtBps(r.Tput1Bps), FmtBps(r.Tput2Bps),
		100*r.Share2, r.Jain, r.Harm1)
}
