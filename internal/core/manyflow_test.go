package core

import (
	"math"
	"testing"
	"time"
)

// TestManyFlowSmoke runs a small cell with the invariant checker
// attached: the victims must hold a fair, non-trivial allocation and
// the background population must actually churn.
func TestManyFlowSmoke(t *testing.T) {
	res, err := RunManyFlow(ManyFlowConfig{
		Users:    20,
		Duration: 3 * time.Second,
		Seed:     1,
		Check:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Victim1Bps <= 0 || res.Victim2Bps <= 0 {
		t.Fatalf("victims starved: %.0f / %.0f bps", res.Victim1Bps, res.Victim2Bps)
	}
	if res.VictimJain < 0.9 {
		t.Errorf("victim Jain %.3f, want >= 0.9 under per-user isolation", res.VictimJain)
	}
	if res.FlowsStarted == 0 || res.FlowsCompleted == 0 {
		t.Errorf("background churn inert: %d started, %d completed", res.FlowsStarted, res.FlowsCompleted)
	}
	if res.Util <= 0 || res.Util > 1 {
		t.Errorf("utilization %.3f out of range", res.Util)
	}
	if res.MaxLivePackets <= 0 {
		t.Errorf("checker reported no live packets; is it attached?")
	}
}

// TestManyFlowDeterministic verifies the cell is byte-replayable: two
// runs of the same config agree on every reported number.
func TestManyFlowDeterministic(t *testing.T) {
	cfg := ManyFlowConfig{Users: 30, Duration: 2 * time.Second, Seed: 7}
	a, err := RunManyFlow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunManyFlow(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Victim1Bps != b.Victim1Bps || a.Victim2Bps != b.Victim2Bps {
		t.Errorf("victim throughput diverged: %v/%v vs %v/%v",
			a.Victim1Bps, a.Victim2Bps, b.Victim1Bps, b.Victim2Bps)
	}
	if a.FlowsStarted != b.FlowsStarted || a.FlowsCompleted != b.FlowsCompleted {
		t.Errorf("churn diverged: %d/%d vs %d/%d",
			a.FlowsStarted, a.FlowsCompleted, b.FlowsStarted, b.FlowsCompleted)
	}
	if a.Events != b.Events {
		t.Errorf("event count diverged: %d vs %d", a.Events, b.Events)
	}
	if a.BackgroundBps != b.BackgroundBps {
		t.Errorf("background rate diverged: %v vs %v", a.BackgroundBps, b.BackgroundBps)
	}
}

// TestManyFlowHybridAB is the fidelity contract for the fluid
// aggregate: at 1000 background users, running all but 32 of them as
// the fluid aggregate must reproduce the packet-level cell's victim
// throughputs and fairness within 5%.
func TestManyFlowHybridAB(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-user A/B cell")
	}
	base := ManyFlowConfig{
		Users:    1000,
		Duration: 10 * time.Second,
		Seed:     1,
	}
	packet, err := RunManyFlow(base)
	if err != nil {
		t.Fatal(err)
	}
	hybrid := base
	hybrid.FluidAbove = 32
	fluid, err := RunManyFlow(hybrid)
	if err != nil {
		t.Fatal(err)
	}
	if fluid.FluidUsers != base.Users-hybrid.FluidAbove {
		t.Fatalf("fluid users %d, want %d", fluid.FluidUsers, base.Users-hybrid.FluidAbove)
	}
	relDiff := func(a, b float64) float64 { return math.Abs(a-b) / b }
	if d := relDiff(fluid.Victim1Bps, packet.Victim1Bps); d > 0.05 {
		t.Errorf("victim1 hybrid %.0f vs packet %.0f bps: %.1f%% divergence, want <= 5%%",
			fluid.Victim1Bps, packet.Victim1Bps, 100*d)
	}
	if d := relDiff(fluid.Victim2Bps, packet.Victim2Bps); d > 0.05 {
		t.Errorf("victim2 hybrid %.0f vs packet %.0f bps: %.1f%% divergence, want <= 5%%",
			fluid.Victim2Bps, packet.Victim2Bps, 100*d)
	}
	if d := math.Abs(fluid.VictimJain - packet.VictimJain); d > 0.05 {
		t.Errorf("Jain hybrid %.3f vs packet %.3f: diff %.3f, want <= 0.05",
			fluid.VictimJain, packet.VictimJain, d)
	}
}
