package core

import (
	"testing"
	"time"
)

// TestFig3Shape verifies the paper's Figure 3 shape: elasticity is
// clearly higher during backlogged-CCA phases (reno, bbr) than during
// application-limited phases (video, short flows, CBR).
func TestFig3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("long simulation")
	}
	res, err := RunFig3(Fig3Config{
		PhaseDuration: 30 * time.Second,
		Seed:          7,
	})
	if err != nil {
		t.Fatal(err)
	}
	etas := map[string]float64{}
	for _, p := range res.Phases {
		etas[p.Name] = p.MeanEta
		t.Logf("phase %-6s mean-eta=%.3f max-eta=%.3f elastic=%v cross=%s probe=%s",
			p.Name, p.MeanEta, p.MaxEta, p.Elastic, FmtBps(p.CrossTputBps), FmtBps(p.ProbeTputBps))
	}
	for _, elastic := range []string{"reno", "bbr"} {
		for _, inelastic := range []string{"video", "short", "cbr"} {
			if etas[elastic] <= etas[inelastic] {
				t.Errorf("eta[%s]=%.3f should exceed eta[%s]=%.3f", elastic, etas[elastic], inelastic, etas[inelastic])
			}
		}
	}
}
