package core

import (
	"fmt"
	"io"

	"repro/internal/mlab"
)

// Fig2Config parameterizes the M-Lab passive-analysis experiment.
type Fig2Config struct {
	// Generator configures the synthetic NDT dataset (default: 9,984
	// flows, the paper's June 2023 query size).
	Generator mlab.GeneratorConfig
	// Analysis configures the pipeline.
	Analysis mlab.AnalysisConfig
	// Workers is the analysis fan-out (default 1: the sweep runner
	// already parallelizes across scenarios). The outcome is identical
	// for every worker count, so it is execution detail, not spec.
	Workers int `json:"-"`
	// SketchCDF switches the shift-magnitude distribution to the
	// constant-memory sketch (streaming aggregate runs). Execution
	// detail, like Workers.
	SketchCDF bool `json:"-"`
}

// Fig2Result bundles the dataset-level outcome.
type Fig2Result struct {
	Config     Fig2Config
	Analysis   *mlab.Analysis
	Validation mlab.Validation
}

func (c Fig2Config) streamOptions(keepResults bool) mlab.StreamOptions {
	workers := c.Workers
	if workers == 0 {
		workers = 1
	}
	return mlab.StreamOptions{
		Workers:       workers,
		KeepResults:   keepResults,
		ExactShiftCDF: !c.SketchCDF,
	}
}

// RunFig2 generates the synthetic NDT dataset and runs the paper's
// §3.1 pipeline over it: filter application-limited, receiver-limited,
// and cellular flows, then search the remainder's throughput traces
// for level shifts. Generation and analysis are pipelined record by
// record — the dataset is never materialized.
func RunFig2(cfg Fig2Config) (*Fig2Result, error) {
	src := mlab.NewGenSource(cfg.Generator)
	an, err := mlab.AnalyzeStream(src, cfg.Analysis, cfg.streamOptions(true))
	if err != nil {
		return nil, err
	}
	return &Fig2Result{Config: cfg, Analysis: an, Validation: an.Validate()}, nil
}

// AnalyzeFig2 runs the pipeline over an existing dataset (e.g. loaded
// from JSONL).
func AnalyzeFig2(recs []mlab.Record, cfg Fig2Config) *Fig2Result {
	r, err := AnalyzeFig2Stream(&mlab.SliceSource{Recs: recs}, cfg)
	if err != nil {
		// A slice source cannot fail to decode.
		panic(err)
	}
	return r
}

// AnalyzeFig2Stream runs the pipeline over a record stream in the
// constant-memory aggregate mode: per-flow results are not retained,
// and with cfg.SketchCDF the shift-magnitude distribution is sketched,
// so memory is O(cfg.Workers x flow size) however large the dataset.
func AnalyzeFig2Stream(src mlab.RecordSource, cfg Fig2Config) (*Fig2Result, error) {
	an, err := mlab.AnalyzeStream(src, cfg.Analysis, cfg.streamOptions(false))
	if err != nil {
		return nil, err
	}
	return &Fig2Result{Config: cfg, Analysis: an, Validation: an.Validate()}, nil
}

// WriteReport renders the Figure 2 style report plus the ground-truth
// validation unavailable to the paper's real-data analysis. It returns
// the first error the underlying writer reported.
func (r *Fig2Result) WriteReport(w io.Writer) error {
	if err := r.Analysis.WriteReport(w); err != nil {
		return err
	}
	v := r.Validation
	if v.TruePos+v.FalseNeg+v.FalsePos+v.TrueNeg > 0 {
		if _, err := fmt.Fprintf(w, "\nlevel-shift detection vs ground truth (candidates only):\n"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  precision=%.3f recall=%.3f (tp=%d fp=%d fn=%d tn=%d)\n",
			v.Precision(), v.Recall(), v.TruePos, v.FalsePos, v.FalseNeg, v.TrueNeg); err != nil {
			return err
		}
	}
	return nil
}
