package core

import (
	"fmt"
	"io"

	"repro/internal/mlab"
)

// Fig2Config parameterizes the M-Lab passive-analysis experiment.
type Fig2Config struct {
	// Generator configures the synthetic NDT dataset (default: 9,984
	// flows, the paper's June 2023 query size).
	Generator mlab.GeneratorConfig
	// Analysis configures the pipeline.
	Analysis mlab.AnalysisConfig
}

// Fig2Result bundles the dataset-level outcome.
type Fig2Result struct {
	Config     Fig2Config
	Analysis   *mlab.Analysis
	Validation mlab.Validation
}

// RunFig2 generates the synthetic NDT dataset and runs the paper's
// §3.1 pipeline over it: filter application-limited, receiver-limited,
// and cellular flows, then search the remainder's throughput traces
// for level shifts. The error return exists for signature uniformity
// with the other registered scenarios (the pipeline itself cannot
// fail) and to leave room for dataset-loading variants.
func RunFig2(cfg Fig2Config) (*Fig2Result, error) {
	recs := mlab.Generate(cfg.Generator)
	an := mlab.Analyze(recs, cfg.Analysis)
	return &Fig2Result{Config: cfg, Analysis: an, Validation: an.Validate()}, nil
}

// AnalyzeFig2 runs the pipeline over an existing dataset (e.g. loaded
// from JSONL).
func AnalyzeFig2(recs []mlab.Record, cfg Fig2Config) *Fig2Result {
	an := mlab.Analyze(recs, cfg.Analysis)
	return &Fig2Result{Config: cfg, Analysis: an, Validation: an.Validate()}
}

// WriteReport renders the Figure 2 style report plus the ground-truth
// validation unavailable to the paper's real-data analysis.
func (r *Fig2Result) WriteReport(w io.Writer) {
	r.Analysis.WriteReport(w)
	v := r.Validation
	if v.TruePos+v.FalseNeg+v.FalsePos+v.TrueNeg > 0 {
		fmt.Fprintf(w, "\nlevel-shift detection vs ground truth (candidates only):\n")
		fmt.Fprintf(w, "  precision=%.3f recall=%.3f (tp=%d fp=%d fn=%d tn=%d)\n",
			v.Precision(), v.Recall(), v.TruePos, v.FalsePos, v.FalseNeg, v.TrueNeg)
	}
}
