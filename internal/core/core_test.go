package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/cca"
	"repro/internal/qdisc"
	"repro/internal/transport"
)

func TestBuildQdiscKinds(t *testing.T) {
	spec := LinkSpec{RateBps: 48e6, OneWayDelay: 20 * time.Millisecond}
	cases := []struct {
		kind QueueKind
		want interface{}
	}{
		{QueueDropTail, &qdisc.DropTail{}},
		{QueueFQ, &qdisc.DRR{}},
		{QueueSFQ, &qdisc.SFQ{}},
		{QueueUserIso, &qdisc.UserIsolation{}},
		{QueueShaper, &qdisc.TokenBucketShaper{}},
		{QueuePolicer, &qdisc.TokenBucketPolicer{}},
	}
	for _, c := range cases {
		spec.Queue = c.kind
		q := BuildQdisc(spec)
		if q == nil {
			t.Fatalf("%s: nil qdisc", c.kind)
		}
		switch c.kind {
		case QueueDropTail:
			if _, ok := q.(*qdisc.DropTail); !ok {
				t.Errorf("%s: got %T", c.kind, q)
			}
		case QueueFQ:
			if _, ok := q.(*qdisc.DRR); !ok {
				t.Errorf("%s: got %T", c.kind, q)
			}
		case QueueSFQ:
			if _, ok := q.(*qdisc.SFQ); !ok {
				t.Errorf("%s: got %T", c.kind, q)
			}
		case QueueUserIso:
			if _, ok := q.(*qdisc.UserIsolation); !ok {
				t.Errorf("%s: got %T", c.kind, q)
			}
		case QueueShaper:
			if _, ok := q.(*qdisc.TokenBucketShaper); !ok {
				t.Errorf("%s: got %T", c.kind, q)
			}
		case QueuePolicer:
			if _, ok := q.(*qdisc.TokenBucketPolicer); !ok {
				t.Errorf("%s: got %T", c.kind, q)
			}
		}
	}
}

func TestLinkSpecDefaults(t *testing.T) {
	s := LinkSpec{RateBps: 10e6, OneWayDelay: 5 * time.Millisecond}.norm()
	if s.Queue != QueueDropTail || s.BufferBDP != 1 {
		t.Errorf("defaults = %+v", s)
	}
	if s.ShapeRateBps != 5e6 {
		t.Errorf("default shape rate = %v", s.ShapeRateBps)
	}
	if s.RTT() != 10*time.Millisecond {
		t.Errorf("RTT = %v", s.RTT())
	}
}

func TestFmtBps(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{500, "500 bit/s"},
		{48e3, "48.00 kbit/s"},
		{48e6, "48.00 Mbit/s"},
		{1.5e9, "1.50 Gbit/s"},
	}
	for _, c := range cases {
		if got := FmtBps(c.in); got != c.want {
			t.Errorf("FmtBps(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDumbbellAddBulk(t *testing.T) {
	d := NewDumbbell(LinkSpec{RateBps: 10e6, OneWayDelay: 5 * time.Millisecond})
	f := d.AddBulk(1, 1, mustCC(t, "reno"))
	d.Run(5 * time.Second)
	if f.Throughput(time.Second, 5*time.Second) < 8e6 {
		t.Error("bulk flow did not fill the dumbbell")
	}
	if d.Link.Stats().SentPackets == 0 {
		t.Error("no packets crossed the link")
	}
}

func TestFig3RejectsUnknownPhase(t *testing.T) {
	_, err := RunFig3(Fig3Config{Phases: []string{"warp-drive"}, PhaseDuration: time.Second})
	if err == nil || !strings.Contains(err.Error(), "unknown fig3 phase") {
		t.Errorf("err = %v", err)
	}
}

func TestFig1RejectsUnknownCCA(t *testing.T) {
	_, err := RunFig1(Fig1Config{
		Pairs:    [][2]string{{"reno", "quic-magic"}},
		Duration: time.Second,
	})
	if err == nil {
		t.Error("unknown CCA should error")
	}
}

func mustCC(t *testing.T, name string) transport.CCA {
	t.Helper()
	cc, err := cca.New(name)
	if err != nil {
		t.Fatal(err)
	}
	return cc
}
