package hunt

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/faults"
	"repro/internal/scenario"
)

// Config parameterizes one hunt.
type Config struct {
	// Objective is the fitness function (see LookupObjective).
	Objective Objective
	// Params fixes the link, main flow, and evaluation seeds. Zero
	// Seed/FaultSeed are derived from Seed below so a hunt is fully
	// specified by (objective, seed, budget, pop, mode).
	Params Params
	// Bounds confines the genome space (zero value: the objective's
	// DefaultBounds).
	Bounds Bounds
	// Budget caps genome evaluations (default 200). A twin objective
	// still counts one evaluation per genome; its second, fault-
	// stripped run rides the same evaluation.
	Budget int
	// Pop is the GA population size (default 24, min 4).
	Pop int
	// Elite is how many top genomes survive unchanged (default 2).
	Elite int
	// CrossoverP is the crossover probability (default 0.7).
	CrossoverP float64
	// TournamentK is the selection tournament size (default 3).
	TournamentK int
	// Immigrants is how many fresh random genomes join each bred
	// generation (default Pop/4, min 1). Immigration keeps the GA
	// exploring: its sample pool stays a superset of what undirected
	// random sampling would draw, with selection pressure on top, so
	// the guided search cannot converge below the blind baseline.
	Immigrants int
	// Mode selects the optimizer: "ga" (default) or "anneal".
	Mode string
	// RefineFrac, in GA mode, reserves this fraction of the budget for
	// a simulated-annealing refinement of the GA's best (default 0).
	RefineFrac float64
	// Seed is the hunt's model seed: every random draw anywhere in the
	// hunt derives from it via faults.DeriveSeed.
	Seed int64
	// Runner executes evaluations (workers, cache, progress are the
	// caller's choice). Nil gets a zero-value sequential runner.
	Runner *scenario.Runner
	// Log, when non-nil, receives one-line progress narration.
	Log func(format string, args ...any)
}

func (c Config) norm() Config {
	if c.Budget <= 0 {
		c.Budget = 200
	}
	if c.Pop <= 0 {
		c.Pop = 24
	}
	if c.Pop < 4 {
		c.Pop = 4
	}
	if c.Elite <= 0 {
		c.Elite = 2
	}
	if c.Elite > c.Pop/2 {
		c.Elite = c.Pop / 2
	}
	if c.CrossoverP <= 0 {
		c.CrossoverP = 0.7
	}
	if c.TournamentK <= 0 {
		c.TournamentK = 3
	}
	if c.Immigrants <= 0 {
		c.Immigrants = c.Pop / 4
		if c.Immigrants < 1 {
			c.Immigrants = 1
		}
	}
	if c.Mode == "" {
		c.Mode = "ga"
	}
	if c.Bounds == (Bounds{}) {
		c.Bounds = c.Objective.DefaultBounds()
	}
	if c.Runner == nil {
		c.Runner = &scenario.Runner{}
	}
	if c.Params.Seed == 0 {
		c.Params.Seed = faults.DeriveSeed(c.Seed, "hunt/workload-seed")
	}
	if c.Params.FaultSeed == 0 {
		c.Params.FaultSeed = faults.DeriveSeed(c.Seed, "hunt/fault-seed")
	}
	c.Params.Probe = c.Objective.Probe
	return c
}

// Generation is one optimizer round's summary.
type Generation struct {
	Gen      int     `json:"gen"`
	Mode     string  `json:"mode"` // "ga" or "anneal"
	Evals    int     `json:"evals"`
	Best     float64 `json:"best"`
	Mean     float64 `json:"mean"`
	BestHash string  `json:"best_hash"`
}

// Baseline is the undirected-search comparison: the best of N random
// genomes under the same params, seeds, and bounds.
type Baseline struct {
	N        int     `json:"n"`
	Best     float64 `json:"best"`
	Mean     float64 `json:"mean"`
	BestHash string  `json:"best_hash"`
}

// Result is a hunt's outcome. Everything in it is deterministic given
// the config: worker count and cache state never leak in.
type Result struct {
	Objective   string        `json:"objective"`
	Mode        string        `json:"mode"`
	Seed        int64         `json:"seed"`
	Budget      int           `json:"budget"`
	Evaluations int           `json:"evaluations"`
	Params      Params        `json:"params"`
	Best        Genome        `json:"best"`
	BestScore   float64       `json:"best_score"`
	BestSpec    scenario.Spec `json:"best_spec"`
	BestHash    string        `json:"best_hash"`
	History     []Generation  `json:"history"`
	Random      *Baseline     `json:"random,omitempty"`
}

// rngFor derives the one rng a (label, generation, index) coordinate
// is allowed to draw from. DeriveSeed is order-independent, so any
// execution order — one worker or sixteen — sees identical dice.
func rngFor(seed int64, label string, gen, idx int) *rand.Rand {
	return rand.New(rand.NewSource(faults.DeriveSeed(seed, fmt.Sprintf("hunt/%s/%d/%d", label, gen, idx))))
}

type hunter struct {
	cfg   Config
	evals int
}

// evaluate scores a batch of genomes through one runner sweep. Results
// come back in input order, so scores are positionally stable no
// matter which worker finishes first. A twin objective evaluates two
// specs per genome (the decoded spec and its fault-stripped twin) in
// the same sweep.
func (h *hunter) evaluate(ctx context.Context, genomes []Genome) ([]float64, error) {
	per := 1
	if h.cfg.Objective.Twin {
		per = 2
	}
	specs := make([]scenario.Spec, 0, len(genomes)*per)
	for _, g := range genomes {
		sp := g.Decode(h.cfg.Params)
		specs = append(specs, sp)
		if h.cfg.Objective.Twin {
			clean := sp
			clean.Fault = nil
			specs = append(specs, clean)
		}
	}
	results, err := h.cfg.Runner.Sweep(ctx, specs)
	if err != nil {
		return nil, fmt.Errorf("hunt: evaluate: %w", err)
	}
	scores := make([]float64, len(genomes))
	for i := range genomes {
		faulted, err := DecodeOutcome(results[i*per])
		if err != nil {
			return nil, fmt.Errorf("hunt: genome %d (%s): %w", i, results[i*per].Hash, err)
		}
		var clean *Outcome
		if h.cfg.Objective.Twin {
			if clean, err = DecodeOutcome(results[i*per+1]); err != nil {
				return nil, fmt.Errorf("hunt: genome %d twin (%s): %w", i, results[i*per+1].Hash, err)
			}
		}
		scores[i] = sanitize(h.cfg.Objective.Score(faulted, clean))
	}
	h.evals += len(genomes)
	return scores, nil
}

// Run executes the hunt.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.norm()
	if cfg.Objective.Score == nil {
		return nil, fmt.Errorf("hunt: config has no objective")
	}
	h := &hunter{cfg: cfg}
	res := &Result{
		Objective: cfg.Objective.Name,
		Mode:      cfg.Mode,
		Seed:      cfg.Seed,
		Budget:    cfg.Budget,
		Params:    cfg.Params,
		BestScore: math.Inf(-1),
	}

	switch cfg.Mode {
	case "ga":
		gaBudget := cfg.Budget
		refine := int(cfg.RefineFrac * float64(cfg.Budget))
		if refine > 0 {
			gaBudget -= refine
		}
		if err := h.runGA(ctx, gaBudget, res); err != nil {
			return nil, err
		}
		if refine > 0 {
			if err := h.runAnneal(ctx, refine, res); err != nil {
				return nil, err
			}
		}
	case "anneal":
		if err := h.runAnneal(ctx, cfg.Budget, res); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("hunt: unknown mode %q (want ga or anneal)", cfg.Mode)
	}

	res.Evaluations = h.evals
	res.BestSpec = res.Best.Decode(cfg.Params)
	res.BestHash = res.BestSpec.Hash()
	return res, nil
}

// note records a candidate as best when it strictly improves. Ties
// keep the earlier find, so the incumbent is stable across replays.
func (r *Result) note(g Genome, score float64) {
	if score > r.BestScore {
		r.BestScore = score
		r.Best = g.Clone()
	}
}

// runGA is the population loop: evaluate, record, select, breed.
// Elites are carried (and re-evaluated: with a cache their sweep slots
// are free hits, and the score bookkeeping stays uniform).
func (h *hunter) runGA(ctx context.Context, budget int, res *Result) error {
	cfg := h.cfg
	left := budget
	pop := make([]Genome, cfg.Pop)
	for i := range pop {
		pop[i] = RandomGenome(rngFor(cfg.Seed, "init", 0, i), cfg.Bounds)
	}
	for gen := 0; left > 0; gen++ {
		if len(pop) > left {
			pop = pop[:left]
		}
		scores, err := h.evaluate(ctx, pop)
		if err != nil {
			return err
		}
		left -= len(pop)

		order := rankDesc(scores)
		var sum float64
		for _, s := range scores {
			sum += s
		}
		for i, g := range pop {
			res.note(g, scores[i])
		}
		best := pop[order[0]]
		g := Generation{
			Gen: gen, Mode: "ga", Evals: h.evals,
			Best: scores[order[0]], Mean: sum / float64(len(scores)),
			BestHash: best.Decode(cfg.Params).Hash(),
		}
		res.History = append(res.History, g)
		if cfg.Log != nil {
			cfg.Log("hunt %s gen %d: best %.4f mean %.4f (%d/%d evals)",
				cfg.Objective.Name, gen, g.Best, g.Mean, h.evals, cfg.Budget)
		}
		if left == 0 {
			break
		}

		next := make([]Genome, 0, cfg.Pop)
		for e := 0; e < cfg.Elite && e < len(order); e++ {
			next = append(next, pop[order[e]].Clone())
		}
		for i := len(next); i < cfg.Pop; i++ {
			// Tail slots are immigrants: fresh random genomes drawn from
			// the same deterministic (label, gen, index) coordinates as
			// the initial population.
			if i >= cfg.Pop-cfg.Immigrants {
				next = append(next, RandomGenome(rngFor(cfg.Seed, "init", gen+1, i), cfg.Bounds))
				continue
			}
			rng := rngFor(cfg.Seed, "breed", gen+1, i)
			p1 := pop[tournament(rng, scores, cfg.TournamentK)]
			child := p1
			if rng.Float64() < cfg.CrossoverP {
				p2 := pop[tournament(rng, scores, cfg.TournamentK)]
				child = Crossover(p1, p2, rng, cfg.Bounds)
			}
			next = append(next, child.Mutate(rng, cfg.Bounds))
		}
		pop = next
	}
	return nil
}

// Annealing temperature schedule: geometric decay across the step
// budget, scaled to the objectives' typical score range.
const (
	annealT0   = 0.08
	annealTEnd = 0.004
)

// runAnneal is the simulated-annealing loop: start from the incumbent
// best (or a random genome when there is none yet), propose one
// mutation per step, accept improvements always and regressions with
// the Metropolis probability at the decaying temperature. Steps are
// sequential by construction — each proposal depends on the last
// accepted state — so worker count cannot change the trajectory.
func (h *hunter) runAnneal(ctx context.Context, budget int, res *Result) error {
	cfg := h.cfg
	cur := res.Best
	curScore := res.BestScore
	if math.IsInf(curScore, -1) {
		cur = RandomGenome(rngFor(cfg.Seed, "anneal-init", 0, 0), cfg.Bounds)
		scores, err := h.evaluate(ctx, []Genome{cur})
		if err != nil {
			return err
		}
		curScore = scores[0]
		res.note(cur, curScore)
		budget--
	}
	for step := 0; step < budget; step++ {
		rng := rngFor(cfg.Seed, "anneal", 0, step)
		cand := cur.Mutate(rng, cfg.Bounds)
		scores, err := h.evaluate(ctx, []Genome{cand})
		if err != nil {
			return err
		}
		candScore := scores[0]
		res.note(cand, candScore)

		frac := float64(step) / math.Max(1, float64(budget-1))
		temp := annealT0 * math.Pow(annealTEnd/annealT0, frac)
		if candScore >= curScore || rng.Float64() < math.Exp((candScore-curScore)/temp) {
			cur, curScore = cand, candScore
		}
		if (step+1)%25 == 0 || step == budget-1 {
			g := Generation{
				Gen: len(res.History), Mode: "anneal", Evals: h.evals,
				Best: res.BestScore, Mean: curScore,
				BestHash: res.Best.Decode(cfg.Params).Hash(),
			}
			res.History = append(res.History, g)
			if cfg.Log != nil {
				cfg.Log("hunt %s anneal step %d: best %.4f current %.4f (%d/%d evals)",
					cfg.Objective.Name, step+1, res.BestScore, curScore, h.evals, cfg.Budget)
			}
		}
	}
	return nil
}

// RandomBaseline evaluates n random genomes under the same params,
// seeds, and bounds as the hunt — the undirected search the guided one
// must beat. The baseline's evaluations do not count against the
// hunt's budget; it is the comparison set, not part of the search.
func RandomBaseline(ctx context.Context, cfg Config, n int) (*Baseline, error) {
	cfg = cfg.norm()
	if cfg.Objective.Score == nil {
		return nil, fmt.Errorf("hunt: config has no objective")
	}
	h := &hunter{cfg: cfg}
	genomes := make([]Genome, n)
	for i := range genomes {
		genomes[i] = RandomGenome(rngFor(cfg.Seed, "random", 0, i), cfg.Bounds)
	}
	scores, err := h.evaluate(ctx, genomes)
	if err != nil {
		return nil, err
	}
	base := &Baseline{N: n, Best: math.Inf(-1)}
	var sum float64
	for i, s := range scores {
		sum += s
		if s > base.Best {
			base.Best = s
			base.BestHash = genomes[i].Decode(cfg.Params).Hash()
		}
	}
	if n > 0 {
		base.Mean = sum / float64(n)
	} else {
		base.Best = 0
	}
	return base, nil
}

// rankDesc returns indices sorted by score descending, ties broken by
// index so the ranking is total and replay-stable.
func rankDesc(scores []float64) []int {
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] > scores[order[b]]
		}
		return order[a] < order[b]
	})
	return order
}

// tournament picks the best of k uniformly drawn indices (ties to the
// lower index).
func tournament(rng *rand.Rand, scores []float64, k int) int {
	best := rng.Intn(len(scores))
	for i := 1; i < k; i++ {
		c := rng.Intn(len(scores))
		if scores[c] > scores[best] || (scores[c] == scores[best] && c < best) {
			best = c
		}
	}
	return best
}
