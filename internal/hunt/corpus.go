package hunt

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/scenario"
)

// CorpusEntry is one discovered pathology, checked into
// internal/hunt/testdata/corpus as a regression pin: the genome, the
// fixed params it was evaluated under, and the exact score and
// contention classification it produced. The tier-1 corpus test
// replays every entry and fails on any drift — a change to the
// simulator, a CCA, or the estimator that shifts a pinned pathology
// is a finding, not noise.
type CorpusEntry struct {
	Name      string  `json:"name"`
	Objective string  `json:"objective"`
	Note      string  `json:"note,omitempty"`
	Params    Params  `json:"params"`
	Genome    Genome  `json:"genome"`
	SpecHash  string  `json:"spec_hash"`
	Score     float64 `json:"score"`
	Class     string  `json:"class"`
}

// Classify names the contention pathology an outcome exhibits, per
// objective family. Victim objectives grade the harm/fairness damage;
// probe objectives grade the estimator's verdicts; the flip objective
// compares the faulted run against its clean twin.
func Classify(obj Objective, faulted, clean *Outcome) string {
	switch {
	case obj.Twin:
		if clean == nil {
			return "stable"
		}
		flips := 0
		for i, p := range faulted.Phases {
			if i < len(clean.Phases) && p.Decided && clean.Phases[i].Decided &&
				p.ProbeElastic != clean.Phases[i].ProbeElastic {
				flips++
			}
		}
		if flips > 0 {
			return "verdict-flipped"
		}
		return "stable"
	case obj.Probe:
		switch {
		case faulted.Decided == 0:
			return "undecided"
		case faulted.Misclassified > 0:
			return "probe-misled"
		default:
			return "probe-correct"
		}
	default:
		switch {
		case faulted.Harm >= 0.8:
			return "starved"
		case faulted.Harm >= 0.3:
			return "harmed"
		case faulted.Jain < 0.8:
			return "skewed"
		default:
			return "benign"
		}
	}
}

// specsFor returns the evaluation spec list for a (genome, params)
// pair under the objective: the decoded spec, plus the fault-stripped
// twin for twin objectives.
func specsFor(obj Objective, g Genome, p Params) []scenario.Spec {
	p.Probe = obj.Probe
	sp := g.Decode(p)
	if !obj.Twin {
		return []scenario.Spec{sp}
	}
	clean := sp
	clean.Fault = nil
	return []scenario.Spec{sp, clean}
}

// ReplayEntry re-evaluates a corpus entry and returns the score and
// classification the replay produced. Callers compare them to the
// entry's pinned values.
func ReplayEntry(ctx context.Context, runner *scenario.Runner, e CorpusEntry) (float64, string, error) {
	obj, err := LookupObjective(e.Objective)
	if err != nil {
		return 0, "", err
	}
	if runner == nil {
		runner = &scenario.Runner{}
	}
	specs := specsFor(obj, e.Genome, e.Params)
	if got := specs[0].Hash(); got != e.SpecHash {
		return 0, "", fmt.Errorf("hunt: corpus %q: spec hash %s, pinned %s (genome decode drifted)", e.Name, got, e.SpecHash)
	}
	results, err := runner.Sweep(ctx, specs)
	if err != nil {
		return 0, "", fmt.Errorf("hunt: corpus %q: %w", e.Name, err)
	}
	faulted, err := DecodeOutcome(results[0])
	if err != nil {
		return 0, "", fmt.Errorf("hunt: corpus %q: %w", e.Name, err)
	}
	var clean *Outcome
	if obj.Twin {
		if clean, err = DecodeOutcome(results[1]); err != nil {
			return 0, "", fmt.Errorf("hunt: corpus %q twin: %w", e.Name, err)
		}
	}
	return sanitize(obj.Score(faulted, clean)), Classify(obj, faulted, clean), nil
}

// NewEntry replays a hunt result's best genome and packages it as a
// corpus entry with its score and classification pinned.
func NewEntry(ctx context.Context, runner *scenario.Runner, res *Result, name, note string) (CorpusEntry, error) {
	e := CorpusEntry{
		Name:      name,
		Objective: res.Objective,
		Note:      note,
		Params:    res.Params,
		Genome:    res.Best,
		SpecHash:  res.BestHash,
	}
	score, class, err := ReplayEntry(ctx, runner, e)
	if err != nil {
		return CorpusEntry{}, err
	}
	e.Score, e.Class = score, class
	return e, nil
}

// SaveEntry writes the entry under dir as <name>.json (canonical
// encoding, trailing newline) and returns the path.
func SaveEntry(dir string, e CorpusEntry) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("hunt: corpus: %w", err)
	}
	b, err := scenario.CanonicalJSON(e)
	if err != nil {
		return "", fmt.Errorf("hunt: corpus: %w", err)
	}
	path := filepath.Join(dir, e.Name+".json")
	if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("hunt: corpus: %w", err)
	}
	return path, nil
}

// LoadCorpus reads every *.json entry under dir, sorted by filename.
// A missing directory is an empty corpus, not an error.
func LoadCorpus(dir string) ([]CorpusEntry, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, fmt.Errorf("hunt: corpus: %w", err)
	}
	sort.Strings(names)
	var entries []CorpusEntry
	for _, path := range names {
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("hunt: corpus: %w", err)
		}
		var e CorpusEntry
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("hunt: corpus %s: %w", path, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}
