package hunt

import (
	"context"
	"testing"

	"repro/internal/scenario"
	"repro/internal/traffic"
)

// TestCorpusReplay is the tier-1 regression pin: every pathology the
// hunt has checked into testdata/corpus must replay to exactly its
// pinned objective score and contention classification. Drift here
// means a simulator, CCA, or estimator change moved a known-bad
// scenario — which is a finding to examine, not noise to re-pin
// blindly.
func TestCorpusReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	entries, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("corpus is empty; expected checked-in pathologies under testdata/corpus")
	}
	runner := &scenario.Runner{}
	objectives := map[string]bool{}
	for _, e := range entries {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			score, class, err := ReplayEntry(context.Background(), runner, e)
			if err != nil {
				t.Fatal(err)
			}
			if score != e.Score {
				t.Errorf("score = %v, pinned %v", score, e.Score)
			}
			if class != e.Class {
				t.Errorf("class = %q, pinned %q", class, e.Class)
			}
		})
		objectives[e.Objective] = true
	}
	// The corpus should witness more than one objective family.
	if len(objectives) < 2 {
		t.Errorf("corpus covers %d objectives, want at least 2", len(objectives))
	}
}

// TestCorpusEntriesWellFormed validates the static shape without
// running simulations: parseable, named, hash-consistent genomes.
func TestCorpusEntriesWellFormed(t *testing.T) {
	entries, err := LoadCorpus("testdata/corpus")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, e := range entries {
		if e.Name == "" || e.Objective == "" || e.SpecHash == "" || e.Class == "" {
			t.Errorf("entry %+v missing required fields", e)
		}
		if seen[e.Name] {
			t.Errorf("duplicate corpus entry name %q", e.Name)
		}
		seen[e.Name] = true
		obj, err := LookupObjective(e.Objective)
		if err != nil {
			t.Errorf("%s: %v", e.Name, err)
			continue
		}
		if err := e.Genome.Validate(obj.DefaultBounds()); err != nil {
			t.Errorf("%s: genome invalid: %v", e.Name, err)
		}
		if got := specsFor(obj, e.Genome, e.Params)[0].Hash(); got != e.SpecHash {
			t.Errorf("%s: decoded hash %s != pinned %s", e.Name, got, e.SpecHash)
		}
	}
}

func TestSaveLoadCorpusRoundTrip(t *testing.T) {
	dir := t.TempDir()
	e := CorpusEntry{
		Name:      "rt",
		Objective: "harm",
		Params:    Params{Seed: 1, FaultSeed: 2},
		Genome:    Genome{Cross: []traffic.Phase{{Kind: "idle", DurS: 3}}},
		SpecHash:  "abc",
		Score:     1.25,
		Class:     "starved",
	}
	if _, err := SaveEntry(dir, e); err != nil {
		t.Fatal(err)
	}
	entries, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("loaded %d entries, want 1", len(entries))
	}
	got := entries[0]
	if got.Name != e.Name || got.Score != e.Score || got.Class != e.Class || got.SpecHash != e.SpecHash {
		t.Errorf("round trip drifted: %+v", got)
	}
	// Missing directory is an empty corpus, not an error.
	empty, err := LoadCorpus(dir + "/nope")
	if err != nil || len(empty) != 0 {
		t.Errorf("missing dir: entries=%v err=%v", empty, err)
	}
}

func TestClassify(t *testing.T) {
	victim, _ := LookupObjective("harm")
	probe, _ := LookupObjective("elastic-miss")
	twin, _ := LookupObjective("flip")
	cases := []struct {
		name    string
		obj     Objective
		faulted *Outcome
		clean   *Outcome
		want    string
	}{
		{"starved", victim, &Outcome{Harm: 0.9, Jain: 0.5}, nil, "starved"},
		{"harmed", victim, &Outcome{Harm: 0.5, Jain: 0.9}, nil, "harmed"},
		{"skewed", victim, &Outcome{Harm: 0.1, Jain: 0.6}, nil, "skewed"},
		{"benign", victim, &Outcome{Harm: 0.1, Jain: 0.95}, nil, "benign"},
		{"undecided", probe, &Outcome{}, nil, "undecided"},
		{"probe-misled", probe, &Outcome{Decided: 2, Misclassified: 1}, nil, "probe-misled"},
		{"probe-correct", probe, &Outcome{Decided: 2}, nil, "probe-correct"},
		{"no-twin", twin, &Outcome{}, nil, "stable"},
		{"flipped", twin,
			&Outcome{Phases: []PhaseOutcome{{Decided: true, ProbeElastic: true}}},
			&Outcome{Phases: []PhaseOutcome{{Decided: true, ProbeElastic: false}}},
			"verdict-flipped"},
		{"stable", twin,
			&Outcome{Phases: []PhaseOutcome{{Decided: true, ProbeElastic: true}}},
			&Outcome{Phases: []PhaseOutcome{{Decided: true, ProbeElastic: true}}},
			"stable"},
	}
	for _, tc := range cases {
		if got := Classify(tc.obj, tc.faulted, tc.clean); got != tc.want {
			t.Errorf("%s: Classify = %q, want %q", tc.name, got, tc.want)
		}
	}
}
