package hunt

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// fuzzGenome is a genome exercising every translation path: loss, GE,
// outages, oscillation, jitter, and a multi-phase schedule.
func fuzzGenome(t *testing.T) Genome {
	t.Helper()
	b := VictimBounds()
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 1000; i++ {
		g := RandomGenome(rng, b)
		if g.Fault.LossProb > 0 && g.Fault.GE != nil && len(g.Fault.Outages) > 0 &&
			g.Fault.HasOscillation() && len(g.Cross) >= 2 {
			return g
		}
	}
	t.Fatal("no fully-loaded genome found")
	return Genome{}
}

func TestFuzzSeedsDeterministic(t *testing.T) {
	g := fuzzGenome(t)
	for _, target := range FuzzTargets {
		a, b := target.Render(g), target.Render(g)
		if len(a) == 0 {
			t.Errorf("%s: empty tape for a loaded genome", target.Target)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s: render not deterministic", target.Target)
		}
	}
	// A zero genome has no schedule, hence no tape.
	for _, target := range FuzzTargets {
		if got := target.Render(Genome{}); got != nil {
			t.Errorf("%s: zero genome rendered %d bytes, want none", target.Target, len(got))
		}
	}
}

// TestFuzzSeedFileParseable pins the `go test fuzz v1` encoding: the
// written file must round-trip back to the tape bytes through the
// same quoted-literal format the fuzzer parses.
func TestFuzzSeedFileParseable(t *testing.T) {
	g := fuzzGenome(t)
	for _, target := range FuzzTargets {
		data := target.Render(g)
		file := string(fuzzSeedFile(data))
		lines := strings.Split(file, "\n")
		if len(lines) != 3 || lines[2] != "" {
			t.Fatalf("%s: want header + literal + newline, got %q", target.Target, file)
		}
		if lines[0] != "go test fuzz v1" {
			t.Errorf("%s: bad header %q", target.Target, lines[0])
		}
		lit := lines[1]
		if !strings.HasPrefix(lit, "[]byte(") || !strings.HasSuffix(lit, ")") {
			t.Fatalf("%s: bad literal %q", target.Target, lit)
		}
		unquoted, err := strconv.Unquote(lit[len("[]byte(") : len(lit)-1])
		if err != nil {
			t.Fatalf("%s: unquote: %v", target.Target, err)
		}
		if !bytes.Equal([]byte(unquoted), data) {
			t.Errorf("%s: literal does not round-trip to the tape", target.Target)
		}
	}
}

func TestWriteFuzzSeeds(t *testing.T) {
	root := t.TempDir()
	e := CorpusEntry{Name: "test-entry", Genome: fuzzGenome(t)}
	paths, err := WriteFuzzSeeds(root, e)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != len(FuzzTargets) {
		t.Fatalf("wrote %d seeds, want %d", len(paths), len(FuzzTargets))
	}
	for i, target := range FuzzTargets {
		want := filepath.Join(root, filepath.FromSlash(target.Dir), "hunt-test-entry")
		if paths[i] != want {
			t.Errorf("path = %s, want %s", paths[i], want)
		}
		b, err := os.ReadFile(want)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(b, []byte("go test fuzz v1\n")) {
			t.Errorf("%s: missing corpus header", want)
		}
	}
}
