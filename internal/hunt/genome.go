// Package hunt is the adversarial scenario search: a guided optimizer
// (a genetic population with tournament selection and crossover, plus
// a simulated-annealing refinement mode) over genomes that encode a
// fault profile and a cross-traffic schedule, evaluated by running the
// decoded genome through the scenario runner's huntcell experiment
// against a pluggable objective — Ware-style harm to a victim flow,
// Jain unfairness, elasticity misclassification by the Nimbus
// estimator, or probe-verdict flips between a faulted link and its
// clean twin.
//
// Everything is deterministic and replayable: every random draw comes
// from a child seed derived via faults.DeriveSeed from (hunt seed,
// generation, index), genome floats live on fixed quantization grids
// so revisited genomes hash — and therefore cache — identically, and
// evaluation goes through Runner.Sweep, whose results are keyed to
// input order. The same hunt at any worker count, cache-cold or
// cache-warm, produces byte-identical results.
package hunt

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/faults"
	"repro/internal/scenario"
	"repro/internal/traffic"
)

// Genome is one point in the search space: an inline fault config for
// the bottleneck plus a cross-traffic schedule. It deliberately holds
// no link or seed parameters — those are fixed per hunt (see Params),
// so the search varies only the environment's hostility, never the
// measurement procedure.
type Genome struct {
	Fault faults.Config   `json:"fault"`
	Cross []traffic.Phase `json:"cross"`
}

// Bounds confines the genome space. The caps keep every decoded
// scenario both physically sensible and score-distinguishable: the
// outage budget, for instance, stops the harm objective from
// saturating at 1.0 by simply blacking the link out, which would turn
// the fitness landscape into a plateau of ties.
type Bounds struct {
	// MaxPhases, MinPhaseS, MaxPhaseS, PhaseStepS shape the schedule.
	MaxPhases  int
	MinPhaseS  float64
	MaxPhaseS  float64
	PhaseStepS float64

	// Per-impairment caps (probabilities and delays).
	MaxLossProb       float64
	MaxDupProb        float64
	MaxReorderProb    float64
	MaxReorderDelayMs float64
	MaxJitterMs       float64

	// MaxOutages/MaxOutageS cap individual windows; OutageFrac caps
	// their summed length as a fraction of the schedule duration.
	MaxOutages int
	MaxOutageS float64
	OutageFrac float64

	// Oscillation caps.
	MaxOscAmp     float64
	MinOscPeriodS float64
	MaxOscPeriodS float64
}

// VictimBounds is the search space for the victim-flow objectives
// (harm, unfairness): short phases, a generous impairment palette.
func VictimBounds() Bounds {
	return Bounds{
		MaxPhases: 4, MinPhaseS: 3, MaxPhaseS: 8, PhaseStepS: 0.5,
		MaxLossProb: 0.05, MaxDupProb: 0.02,
		MaxReorderProb: 0.05, MaxReorderDelayMs: 40, MaxJitterMs: 30,
		MaxOutages: 3, MaxOutageS: 2, OutageFrac: 0.15,
		MaxOscAmp: 0.6, MinOscPeriodS: 0.5, MaxOscPeriodS: 8,
	}
}

// ProbeBounds is the search space for the probe objectives
// (elasticity misclassification, verdict flips): phases long enough
// for the estimator to emit verdict windows, a tighter outage budget
// so the probe is misled rather than silenced.
func ProbeBounds() Bounds {
	return Bounds{
		MaxPhases: 3, MinPhaseS: 12, MaxPhaseS: 18, PhaseStepS: 1,
		MaxLossProb: 0.03, MaxDupProb: 0.02,
		MaxReorderProb: 0.05, MaxReorderDelayMs: 40, MaxJitterMs: 30,
		MaxOutages: 2, MaxOutageS: 1.5, OutageFrac: 0.06,
		MaxOscAmp: 0.6, MinOscPeriodS: 0.5, MaxOscPeriodS: 8,
	}
}

// Quantization grids. Genome floats only ever take values on these
// grids, so two genomes that wander to the same point encode to the
// same canonical JSON, hash identically, and hit the runner cache.
const (
	probStep   = 0.005 // probabilities
	msStep     = 1.0   // millisecond delays
	ampStep    = 0.05  // oscillation amplitude
	periodStep = 0.25  // oscillation period (s)
	phaseStep  = 0.05  // oscillation phase fraction
	outStep    = 0.1   // outage window edges (s)
)

// Gilbert–Elliott sub-bounds: burst losses stay bursty (rare
// good→bad, non-trivial loss in bad) instead of degenerating into
// i.i.d. loss the LossProb knob already covers.
const (
	maxGEPGoodBad = 0.05
	minGEPBadGood = 0.05
	maxGEPBadGood = 0.5
	minGELossBad  = 0.2
	// maxGEEffLoss caps the chain's stationary loss rate
	// (duty × LossBad, duty = PGoodBad/(PGoodBad+PBadGood)). Without
	// it, a long-burst/total-loss chain is a stealth outage that evades
	// the outage budget, kills the whole link, and collapses the
	// victim objectives onto a saturation plateau of ties.
	maxGEEffLoss = 0.12
)

// quant snaps v to the grid. Deterministic and idempotent: the grid
// point re-quantizes to itself.
func quant(v, step float64) float64 {
	return math.Round(v/step) * step
}

// floorQuant snaps v down to the grid (for budget trims that must
// never round upward past the budget).
func floorQuant(v, step float64) float64 {
	return math.Floor(v/step) * step
}

// clampQ clamps v into [lo, hi] and quantizes. Quantization happens
// before the bound check: a grid step like 0.05 is not exactly
// representable, so quant can land a hair past the bound (0.6 snaps to
// 0.6000000000000001) — clamping last keeps the result in range and
// makes the function a true projection (idempotent).
func clampQ(v, lo, hi, step float64) float64 {
	if math.IsNaN(v) || v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	q := quant(v, step)
	if q < lo {
		return lo
	}
	if q > hi {
		return hi
	}
	return q
}

// uniformQ draws uniformly from [lo, hi] on the grid.
func uniformQ(rng *rand.Rand, lo, hi, step float64) float64 {
	return clampQ(lo+rng.Float64()*(hi-lo), lo, hi, step)
}

// Clone deep-copies the genome (the GE pointer and both slices).
func (g Genome) Clone() Genome {
	out := g
	if g.Fault.GE != nil {
		ge := *g.Fault.GE
		out.Fault.GE = &ge
	}
	out.Fault.Outages = append([]faults.WindowSpec(nil), g.Fault.Outages...)
	out.Cross = append([]traffic.Phase(nil), g.Cross...)
	return out
}

// Duration is the decoded scenario's total length (the schedule's).
func (g Genome) Duration() float64 {
	var total float64
	for _, p := range g.Cross {
		total += p.DurS
	}
	return total
}

// Canonical returns the genome snapped into the bounds: schedule
// clamped to [1, MaxPhases] phases on the duration grid, every fault
// knob clamped and quantized, outages sorted, merged, clipped to the
// schedule, and trimmed to the outage budget. Canonical is idempotent,
// and a canonical genome JSON-round-trips to identical bytes.
func (g Genome) Canonical(b Bounds) Genome {
	g = g.Clone()

	// Schedule first: the outage budget depends on its total length.
	if len(g.Cross) == 0 {
		g.Cross = []traffic.Phase{{Kind: "idle", DurS: clampQ(b.MinPhaseS, b.MinPhaseS, b.MaxPhaseS, b.PhaseStepS)}}
	}
	if len(g.Cross) > b.MaxPhases {
		g.Cross = g.Cross[:b.MaxPhases]
	}
	for i := range g.Cross {
		g.Cross[i].DurS = clampQ(g.Cross[i].DurS, b.MinPhaseS, b.MaxPhaseS, b.PhaseStepS)
	}
	dur := g.Duration()

	f := &g.Fault
	f.LossProb = clampQ(f.LossProb, 0, b.MaxLossProb, probStep)
	f.DupProb = clampQ(f.DupProb, 0, b.MaxDupProb, probStep)
	f.ReorderProb = clampQ(f.ReorderProb, 0, b.MaxReorderProb, probStep)
	f.ReorderDelayMs = clampQ(f.ReorderDelayMs, 0, b.MaxReorderDelayMs, msStep)
	if f.ReorderProb == 0 {
		f.ReorderDelayMs = 0
	}
	f.JitterMs = clampQ(f.JitterMs, 0, b.MaxJitterMs, msStep)
	if f.GE != nil {
		f.GE.PGoodBad = clampQ(f.GE.PGoodBad, 0, maxGEPGoodBad, probStep)
		f.GE.PBadGood = clampQ(f.GE.PBadGood, minGEPBadGood, maxGEPBadGood, probStep)
		f.GE.LossGood = 0
		f.GE.LossBad = clampQ(f.GE.LossBad, minGELossBad, 1, probStep)
		if f.GE.PGoodBad == 0 {
			f.GE = nil
		} else {
			// Enforce the stationary-loss cap by trimming LossBad. The
			// floor never conflicts: duty ≤ 0.5, so even minGELossBad
			// stays within maxGEEffLoss.
			duty := f.GE.PGoodBad / (f.GE.PGoodBad + f.GE.PBadGood)
			if cap := floorQuant(maxGEEffLoss/duty, probStep); f.GE.LossBad > cap {
				f.GE.LossBad = math.Max(minGELossBad, cap)
			}
		}
	}

	// Outages: snap to the grid, clip to the schedule, canonicalize
	// (sort + merge), then trim to the budget.
	var ws []faults.WindowSpec
	for _, w := range f.Outages {
		start := clampQ(w.StartS, 0, floorQuant(dur, outStep), outStep)
		end := clampQ(w.EndS, 0, floorQuant(dur, outStep), outStep)
		if end > start+b.MaxOutageS {
			end = start + b.MaxOutageS
		}
		if end > start {
			ws = append(ws, faults.WindowSpec{StartS: start, EndS: end})
		}
	}
	f.Outages = ws
	*f = f.Canonical()
	// Merging can fuse windows into one longer than the per-window cap;
	// re-clip the merged result (shrinking sorted, disjoint windows
	// keeps them sorted and disjoint).
	for i, w := range f.Outages {
		if w.EndS-w.StartS > b.MaxOutageS {
			f.Outages[i].EndS = w.StartS + b.MaxOutageS
		}
	}
	if len(f.Outages) > b.MaxOutages {
		f.Outages = f.Outages[:b.MaxOutages]
	}
	budget := floorQuant(b.OutageFrac*dur, outStep)
	var used float64
	for i, w := range f.Outages {
		length := w.EndS - w.StartS
		if used+length <= budget {
			used += length
			continue
		}
		// This window crosses the budget: trim it to what remains (on
		// the grid, rounding down) and drop the rest.
		remaining := floorQuant(budget-used, outStep)
		if remaining > 0 {
			f.Outages[i].EndS = w.StartS + remaining
			f.Outages = f.Outages[:i+1]
		} else {
			f.Outages = f.Outages[:i]
		}
		break
	}
	if len(f.Outages) == 0 {
		f.Outages = nil
		f.DropDuringOutages = false
	}

	if f.OscAmp > 0 && f.OscPeriodS > 0 {
		f.OscAmp = clampQ(f.OscAmp, 0, b.MaxOscAmp, ampStep)
		f.OscPeriodS = clampQ(f.OscPeriodS, b.MinOscPeriodS, b.MaxOscPeriodS, periodStep)
		f.OscPhase = clampQ(f.OscPhase, 0, 0.95, phaseStep)
	}
	// A mutation walk can push amp or period negative (or NaN); any
	// non-positive component disables the oscillation entirely.
	if !(f.OscAmp > 0) || !(f.OscPeriodS > 0) {
		f.OscAmp, f.OscPeriodS, f.OscPhase = 0, 0, 0
	}
	return g
}

// eps absorbs the float noise quantization can leave on grid points.
const eps = 1e-9

// Validate checks the genome against the bounds: a valid schedule
// within the phase caps, a valid fault config within the impairment
// caps, and the outage budget respected. Canonical(b) output always
// validates.
func (g Genome) Validate(b Bounds) error {
	if err := traffic.ValidateSchedule(g.Cross); err != nil {
		return fmt.Errorf("hunt: genome: %w", err)
	}
	if len(g.Cross) > b.MaxPhases {
		return fmt.Errorf("hunt: genome: %d phases exceed cap %d", len(g.Cross), b.MaxPhases)
	}
	for i, p := range g.Cross {
		if p.DurS < b.MinPhaseS-eps || p.DurS > b.MaxPhaseS+eps {
			return fmt.Errorf("hunt: genome: phase %d duration %v outside [%v, %v]", i, p.DurS, b.MinPhaseS, b.MaxPhaseS)
		}
	}
	if err := g.Fault.Validate(); err != nil {
		return fmt.Errorf("hunt: genome: %w", err)
	}
	f := g.Fault
	for _, knob := range []struct {
		name string
		v    float64
		max  float64
	}{
		{"loss_prob", f.LossProb, b.MaxLossProb},
		{"dup_prob", f.DupProb, b.MaxDupProb},
		{"reorder_prob", f.ReorderProb, b.MaxReorderProb},
		{"reorder_delay_ms", f.ReorderDelayMs, b.MaxReorderDelayMs},
		{"jitter_ms", f.JitterMs, b.MaxJitterMs},
		{"osc_amp", f.OscAmp, b.MaxOscAmp},
	} {
		if knob.v > knob.max+eps {
			return fmt.Errorf("hunt: genome: %s %v exceeds cap %v", knob.name, knob.v, knob.max)
		}
	}
	if f.HasOscillation() && (f.OscPeriodS < b.MinOscPeriodS-eps || f.OscPeriodS > b.MaxOscPeriodS+eps) {
		return fmt.Errorf("hunt: genome: osc_period_s %v outside [%v, %v]", f.OscPeriodS, b.MinOscPeriodS, b.MaxOscPeriodS)
	}
	if f.GE != nil && f.GE.PGoodBad+f.GE.PBadGood > 0 {
		if eff := f.GE.LossBad * f.GE.PGoodBad / (f.GE.PGoodBad + f.GE.PBadGood); eff > maxGEEffLoss+eps {
			return fmt.Errorf("hunt: genome: GE stationary loss %v exceeds cap %v", eff, maxGEEffLoss)
		}
	}
	if len(f.Outages) > b.MaxOutages {
		return fmt.Errorf("hunt: genome: %d outages exceed cap %d", len(f.Outages), b.MaxOutages)
	}
	dur := g.Duration()
	var total float64
	for i, w := range f.Outages {
		if w.EndS-w.StartS > b.MaxOutageS+eps {
			return fmt.Errorf("hunt: genome: outage %d length %v exceeds cap %v", i, w.EndS-w.StartS, b.MaxOutageS)
		}
		if w.EndS > dur+eps {
			return fmt.Errorf("hunt: genome: outage %d ends at %v past the schedule (%v)", i, w.EndS, dur)
		}
		total += w.EndS - w.StartS
	}
	if total > b.OutageFrac*dur+outStep+eps {
		return fmt.Errorf("hunt: genome: total outage %vs exceeds budget %vs", total, b.OutageFrac*dur)
	}
	return nil
}

// Params fixes everything about a hunt's evaluations that is not part
// of the genome: the link, the main flow, and the seeds. It is stored
// alongside each corpus genome so replays are self-contained.
type Params struct {
	// RateBps/RTTMs/Queue/BufferBDP describe the bottleneck (zero
	// values take the huntcell defaults: 16 Mbit/s, 30ms, droptail, 1).
	RateBps   float64 `json:"rate_bps,omitempty"`
	RTTMs     float64 `json:"rtt_ms,omitempty"`
	Queue     string  `json:"queue,omitempty"`
	BufferBDP float64 `json:"buffer_bdp,omitempty"`
	// Victim names the main flow's CCA in victim mode.
	Victim string `json:"victim,omitempty"`
	// Probe switches the main flow to the Nimbus elasticity probe.
	Probe bool `json:"probe,omitempty"`
	// Seed/FaultSeed drive the workload and fault injectors. They are
	// the same for every genome in a hunt: the search varies the
	// environment, never the dice.
	Seed      int64 `json:"seed"`
	FaultSeed int64 `json:"fault_seed"`
}

// Decode turns the genome into a runnable huntcell spec under the
// given fixed parameters. The mapping is canonical: equal genomes and
// params yield byte-identical specs (and therefore equal spec hashes).
func (g Genome) Decode(p Params) scenario.Spec {
	sp := scenario.Spec{
		Experiment: "huntcell",
		Seed:       p.Seed,
		RateBps:    p.RateBps,
		RTTMs:      p.RTTMs,
		Queue:      p.Queue,
		BufferBDP:  p.BufferBDP,
		Cross:      append([]traffic.Phase(nil), g.Cross...),
		Probe:      p.Probe,
		FaultSeed:  p.FaultSeed,
	}
	if !p.Probe {
		victim := p.Victim
		if victim == "" {
			victim = "reno"
		}
		sp.CCAs = []string{victim}
	}
	if !g.Fault.IsZero() {
		f := g.Fault
		if f.GE != nil {
			ge := *f.GE
			f.GE = &ge
		}
		f.Outages = append([]faults.WindowSpec(nil), f.Outages...)
		sp.Fault = &f
	}
	return sp
}

// RandomGenome draws a genome from the bounds. Each impairment is
// enabled with moderate probability and a uniformly drawn magnitude,
// so random populations (and the random-search baseline) sample the
// whole space without concentrating on the hostile corner — finding
// that corner is the optimizer's job, not the prior's.
func RandomGenome(rng *rand.Rand, b Bounds) Genome {
	var g Genome
	kinds := traffic.PhaseKinds()
	n := 1 + rng.Intn(b.MaxPhases)
	for i := 0; i < n; i++ {
		g.Cross = append(g.Cross, traffic.Phase{
			Kind: kinds[rng.Intn(len(kinds))],
			DurS: uniformQ(rng, b.MinPhaseS, b.MaxPhaseS, b.PhaseStepS),
		})
	}
	if rng.Float64() < 0.5 {
		g.Fault.LossProb = uniformQ(rng, 0, b.MaxLossProb, probStep)
	}
	if rng.Float64() < 0.35 {
		g.Fault.GE = &faults.GESpec{
			PGoodBad: uniformQ(rng, probStep, maxGEPGoodBad, probStep),
			PBadGood: uniformQ(rng, minGEPBadGood, maxGEPBadGood, probStep),
			LossBad:  uniformQ(rng, minGELossBad, 1, probStep),
		}
	}
	if rng.Float64() < 0.25 {
		g.Fault.DupProb = uniformQ(rng, 0, b.MaxDupProb, probStep)
	}
	if rng.Float64() < 0.3 {
		g.Fault.ReorderProb = uniformQ(rng, 0, b.MaxReorderProb, probStep)
		g.Fault.ReorderDelayMs = uniformQ(rng, msStep, b.MaxReorderDelayMs, msStep)
	}
	if rng.Float64() < 0.4 {
		g.Fault.JitterMs = uniformQ(rng, 0, b.MaxJitterMs, msStep)
	}
	if b.MaxOutages > 0 && rng.Float64() < 0.5 {
		dur := g.Duration()
		nOut := 1 + rng.Intn(b.MaxOutages)
		for i := 0; i < nOut; i++ {
			start := uniformQ(rng, 0, dur, outStep)
			g.Fault.Outages = append(g.Fault.Outages, faults.WindowSpec{
				StartS: start,
				EndS:   start + uniformQ(rng, outStep, b.MaxOutageS, outStep),
			})
		}
		g.Fault.DropDuringOutages = rng.Float64() < 0.25
	}
	if rng.Float64() < 0.4 {
		g.Fault.OscAmp = uniformQ(rng, ampStep, b.MaxOscAmp, ampStep)
		g.Fault.OscPeriodS = uniformQ(rng, b.MinOscPeriodS, b.MaxOscPeriodS, periodStep)
		g.Fault.OscPhase = uniformQ(rng, 0, 0.95, phaseStep)
	}
	return g.Canonical(b)
}

// Mutate returns a mutated copy: one or two random edits — nudging a
// float knob, toggling an impairment on or off, rewriting a phase —
// re-canonicalized into the bounds.
func (g Genome) Mutate(rng *rand.Rand, b Bounds) Genome {
	g = g.Clone()
	edits := 1 + rng.Intn(2)
	for e := 0; e < edits; e++ {
		g.mutateOnce(rng, b)
	}
	return g.Canonical(b)
}

// gauss is a bounded random walk step: a normal nudge scaled to a
// quarter of the knob's range.
func gauss(rng *rand.Rand, v, max float64) float64 {
	return v + rng.NormFloat64()*0.25*max
}

func (g *Genome) mutateOnce(rng *rand.Rand, b Bounds) {
	f := &g.Fault
	kinds := traffic.PhaseKinds()
	switch rng.Intn(10) {
	case 0: // i.i.d. loss
		f.LossProb = gauss(rng, f.LossProb, b.MaxLossProb)
	case 1: // GE burst loss: toggle or nudge
		if f.GE == nil {
			f.GE = &faults.GESpec{
				PGoodBad: uniformQ(rng, probStep, maxGEPGoodBad, probStep),
				PBadGood: uniformQ(rng, minGEPBadGood, maxGEPBadGood, probStep),
				LossBad:  uniformQ(rng, minGELossBad, 1, probStep),
			}
		} else if rng.Float64() < 0.2 {
			f.GE = nil
		} else {
			switch rng.Intn(3) {
			case 0:
				f.GE.PGoodBad = gauss(rng, f.GE.PGoodBad, maxGEPGoodBad)
			case 1:
				f.GE.PBadGood = gauss(rng, f.GE.PBadGood, maxGEPBadGood)
			case 2:
				f.GE.LossBad = gauss(rng, f.GE.LossBad, 1)
			}
		}
	case 2: // duplication / reordering
		if rng.Intn(2) == 0 {
			f.DupProb = gauss(rng, f.DupProb, b.MaxDupProb)
		} else {
			f.ReorderProb = gauss(rng, f.ReorderProb, b.MaxReorderProb)
			f.ReorderDelayMs = gauss(rng, f.ReorderDelayMs, b.MaxReorderDelayMs)
		}
	case 3: // jitter
		f.JitterMs = gauss(rng, f.JitterMs, b.MaxJitterMs)
	case 4: // outage add/drop/jiggle
		dur := g.Duration()
		switch {
		case len(f.Outages) == 0 || (len(f.Outages) < b.MaxOutages && rng.Float64() < 0.4):
			start := uniformQ(rng, 0, dur, outStep)
			f.Outages = append(f.Outages, faults.WindowSpec{
				StartS: start,
				EndS:   start + uniformQ(rng, outStep, b.MaxOutageS, outStep),
			})
		case rng.Float64() < 0.25:
			f.Outages = append(f.Outages[:0:0], f.Outages[1:]...)
		default:
			i := rng.Intn(len(f.Outages))
			w := f.Outages[i]
			length := w.EndS - w.StartS
			w.StartS = gauss(rng, w.StartS, dur/4)
			if w.StartS < 0 {
				w.StartS = 0
			}
			w.EndS = w.StartS + math.Max(outStep, gauss(rng, length, b.MaxOutageS))
			f.Outages[i] = w
		}
	case 5: // outage semantics
		f.DropDuringOutages = !f.DropDuringOutages
	case 6: // oscillation: toggle or nudge
		if !f.HasOscillation() {
			f.OscAmp = uniformQ(rng, ampStep, b.MaxOscAmp, ampStep)
			f.OscPeriodS = uniformQ(rng, b.MinOscPeriodS, b.MaxOscPeriodS, periodStep)
			f.OscPhase = uniformQ(rng, 0, 0.95, phaseStep)
		} else if rng.Float64() < 0.2 {
			f.OscAmp, f.OscPeriodS, f.OscPhase = 0, 0, 0
		} else {
			switch rng.Intn(3) {
			case 0:
				f.OscAmp = gauss(rng, f.OscAmp, b.MaxOscAmp)
			case 1:
				f.OscPeriodS = gauss(rng, f.OscPeriodS, b.MaxOscPeriodS)
			case 2:
				f.OscPhase = math.Mod(f.OscPhase+rng.Float64(), 1)
			}
		}
	case 7: // rewrite a phase's kind
		g.Cross[rng.Intn(len(g.Cross))].Kind = kinds[rng.Intn(len(kinds))]
	case 8: // nudge a phase's duration
		i := rng.Intn(len(g.Cross))
		g.Cross[i].DurS = gauss(rng, g.Cross[i].DurS, b.MaxPhaseS-b.MinPhaseS)
	case 9: // grow or shrink the schedule
		if len(g.Cross) < b.MaxPhases && (len(g.Cross) == 1 || rng.Intn(2) == 0) {
			g.Cross = append(g.Cross, traffic.Phase{
				Kind: kinds[rng.Intn(len(kinds))],
				DurS: uniformQ(rng, b.MinPhaseS, b.MaxPhaseS, b.PhaseStepS),
			})
		} else if len(g.Cross) > 1 {
			i := rng.Intn(len(g.Cross))
			g.Cross = append(g.Cross[:i:i], g.Cross[i+1:]...)
		}
	}
}

// Crossover mixes two parents: each fault impairment group is
// inherited whole from one parent (a coin flip per group, so coupled
// knobs like a GE chain or an oscillation triple travel together), and
// the schedule is a one-point splice. The child is re-canonicalized.
func Crossover(a, b Genome, rng *rand.Rand, bounds Bounds) Genome {
	a, b = a.Clone(), b.Clone()
	var child Genome
	pick := func() *faults.Config {
		if rng.Intn(2) == 0 {
			return &a.Fault
		}
		return &b.Fault
	}
	child.Fault.LossProb = pick().LossProb
	child.Fault.GE = pick().GE
	child.Fault.DupProb = pick().DupProb
	{
		p := pick()
		child.Fault.ReorderProb = p.ReorderProb
		child.Fault.ReorderDelayMs = p.ReorderDelayMs
	}
	child.Fault.JitterMs = pick().JitterMs
	{
		p := pick()
		child.Fault.Outages = p.Outages
		child.Fault.DropDuringOutages = p.DropDuringOutages
	}
	{
		p := pick()
		child.Fault.OscAmp = p.OscAmp
		child.Fault.OscPeriodS = p.OscPeriodS
		child.Fault.OscPhase = p.OscPhase
	}
	// One-point schedule splice: a's head, b's tail.
	cut := rng.Intn(len(a.Cross) + 1)
	child.Cross = append(child.Cross, a.Cross[:cut]...)
	if cut < len(b.Cross) {
		child.Cross = append(child.Cross, b.Cross[cut:]...)
	}
	return child.Canonical(bounds)
}
