package hunt

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"repro/internal/scenario"
)

// Outcome is the hunt's view of one huntcell evaluation, decoded from
// the canonical result JSON a RunResult carries. Decoding from the
// canonical bytes — not from a live value — means cached and fresh
// evaluations are literally indistinguishable to the objectives.
type Outcome struct {
	MainTputBps   float64
	CrossTputBps  float64
	FairShareBps  float64
	Harm          float64
	Jain          float64
	Util          float64
	Decided       int
	Misclassified int
	Phases        []PhaseOutcome
}

// PhaseOutcome is one schedule phase's slice of the outcome.
type PhaseOutcome struct {
	Kind         string
	TruthElastic bool
	ProbeElastic bool
	Decided      bool
	Windows      int
	MeanEta      float64
}

// DecodeOutcome unpacks a huntcell RunResult.
func DecodeOutcome(res scenario.RunResult) (*Outcome, error) {
	if res.Err != "" {
		return nil, errors.New(res.Err)
	}
	var o Outcome
	if err := json.Unmarshal(res.Result, &o); err != nil {
		return nil, fmt.Errorf("hunt: decode outcome: %w", err)
	}
	return &o, nil
}

// sanitize guards the fitness landscape: a NaN or infinite score (a
// degenerate run, a zero denominator upstream) becomes 0 — never
// selected, never crowned best — and finite scores clamp to [0, 2].
func sanitize(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0
	}
	if v > 2 {
		return 2
	}
	return v
}

// crossShare is the cross traffic's fraction of the raw link rate
// (fair share is half the link, so twice it is the full rate). The
// victim-mode objectives use it as their tiebreak term: it rewards
// contention — cross traffic thriving while the victim starves — over
// the degenerate blackout that merely kills both flows. Deliberately
// unclamped above 1 (rate oscillation can lift instantaneous capacity
// past nominal): clamping there would recreate a reachable plateau of
// ties, while the raw ratio is physically bounded and keeps a strict
// gradient all the way up; sanitize caps the combined score at 2.
func crossShare(o *Outcome) float64 {
	if o.FairShareBps <= 0 {
		return 0
	}
	v := o.CrossTputBps / (2 * o.FairShareBps)
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	return v
}

// clamp01 clamps with the same NaN guard, for score components.
func clamp01(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Objective is a pluggable fitness function: higher scores mean a more
// pathological scenario. Probe selects the huntcell's probe mode; Twin
// asks the evaluator for a second, fault-stripped run of the same
// genome (the verdict-flip objective compares the two).
type Objective struct {
	Name string
	Desc string
	// Probe runs the cell in probe mode; Twin adds the clean-twin run.
	Probe bool
	Twin  bool
	// Score maps the outcome(s) to fitness; clean is nil unless Twin.
	Score func(faulted, clean *Outcome) float64
}

// objectives is the registry, in the order `ccac hunt` lists them.
var objectives = []Objective{
	{
		Name: "harm",
		Desc: "maximize Ware-style harm to the victim flow vs its half-link fair share",
		// Harm alone saturates at 1.0 once the victim is fully starved
		// — trivially reachable by blacking the whole link out — and
		// the landscape becomes a plateau of ties. The cross-share term
		// demands the paper's actual pathology instead: cross traffic
		// thriving while the victim starves. Its top (cross monopolizing
		// the raw link rate) is asymptotic, never exactly reached, so
		// the landscape keeps a gradient all the way up.
		Score: func(o, _ *Outcome) float64 {
			return clamp01(o.Harm) + 0.25*crossShare(o)
		},
	},
	{
		Name: "unfair",
		Desc: "minimize Jain fairness between the victim and the cross traffic",
		// Jain over two live flows lives in [0.5, 1], so the first term
		// spans [0, 1]; a dead link (both allocations zero) hits the
		// index's zero-denominator guard and is scored 0, not crowned.
		// The cross-share term makes the top asymptotic as in harm.
		Score: func(o, _ *Outcome) float64 {
			if o.MainTputBps <= 0 && o.CrossTputBps <= 0 {
				return 0
			}
			return clamp01(2*(1-o.Jain)) + 0.25*crossShare(o)
		},
	},
	{
		Name:  "elastic-miss",
		Desc:  "make the Nimbus estimator misclassify cross-traffic elasticity",
		Probe: true,
		Score: func(o, _ *Outcome) float64 {
			if o.Decided == 0 {
				return 0
			}
			miss := float64(o.Misclassified) / float64(o.Decided)
			// Continuous tiebreak: pushing a truth-elastic phase's mean
			// eta down (or a truth-inelastic one's up) moves it toward
			// the wrong side of the threshold, so the search has a
			// gradient even before the first verdict actually flips.
			var wrongward float64
			for _, p := range o.Phases {
				if !p.Decided {
					continue
				}
				if p.TruthElastic {
					wrongward += clamp01(1 - p.MeanEta)
				} else {
					wrongward += clamp01(p.MeanEta)
				}
			}
			return clamp01(miss) + 0.25*wrongward/float64(o.Decided)
		},
	},
	{
		Name:  "flip",
		Desc:  "flip the probe's per-phase verdicts between the faulted link and its clean twin",
		Probe: true,
		Twin:  true,
		Score: func(o, clean *Outcome) float64 {
			if clean == nil || len(o.Phases) != len(clean.Phases) {
				return 0
			}
			var compared, flips int
			var shift float64
			for i, p := range o.Phases {
				c := clean.Phases[i]
				if !p.Decided || !c.Decided {
					continue
				}
				compared++
				if p.ProbeElastic != c.ProbeElastic {
					flips++
				}
				shift += clamp01(math.Abs(p.MeanEta - c.MeanEta))
			}
			if compared == 0 {
				return 0
			}
			return float64(flips)/float64(compared) + 0.25*shift/float64(compared)
		},
	},
}

// Objectives returns the registered objectives in listing order.
func Objectives() []Objective {
	return append([]Objective(nil), objectives...)
}

// ObjectiveNames returns the names in listing order.
func ObjectiveNames() []string {
	names := make([]string, len(objectives))
	for i, o := range objectives {
		names[i] = o.Name
	}
	return names
}

// LookupObjective resolves a name.
func LookupObjective(name string) (Objective, error) {
	for _, o := range objectives {
		if o.Name == name {
			return o, nil
		}
	}
	return Objective{}, fmt.Errorf("hunt: unknown objective %q (have %v)", name, ObjectiveNames())
}

// DefaultBounds returns the search space matched to the objective's
// evaluation mode.
func (o Objective) DefaultBounds() Bounds {
	if o.Probe {
		return ProbeBounds()
	}
	return VictimBounds()
}
