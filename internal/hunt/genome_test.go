package hunt

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

// allBounds are the two shipped search spaces; every property below
// must hold in both.
func allBounds() map[string]Bounds {
	return map[string]Bounds{
		"victim": VictimBounds(),
		"probe":  ProbeBounds(),
	}
}

func testParams() Params {
	return Params{Seed: 7, FaultSeed: 11}
}

// canonJSON is a genome's canonical byte representation for equality
// checks.
func canonJSON(t *testing.T, g Genome) []byte {
	t.Helper()
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

func TestRandomGenomeAlwaysValid(t *testing.T) {
	for name, b := range allBounds() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 200; seed++ {
				g := RandomGenome(rand.New(rand.NewSource(seed)), b)
				if err := g.Validate(b); err != nil {
					t.Fatalf("seed %d: random genome invalid: %v\n%s", seed, err, canonJSON(t, g))
				}
			}
		})
	}
}

func TestMutateChainsStayValid(t *testing.T) {
	for name, b := range allBounds() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 40; seed++ {
				rng := rand.New(rand.NewSource(seed))
				g := RandomGenome(rng, b)
				// Long chains reach the corners of the space where clamp
				// and budget-trim interactions live.
				for step := 0; step < 25; step++ {
					g = g.Mutate(rng, b)
					if err := g.Validate(b); err != nil {
						t.Fatalf("seed %d step %d: mutant invalid: %v\n%s",
							seed, step, err, canonJSON(t, g))
					}
				}
			}
		})
	}
}

func TestCrossoverStaysValid(t *testing.T) {
	for name, b := range allBounds() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 100; seed++ {
				rng := rand.New(rand.NewSource(seed))
				p1 := RandomGenome(rng, b)
				p2 := RandomGenome(rng, b)
				child := Crossover(p1, p2, rng, b)
				if err := child.Validate(b); err != nil {
					t.Fatalf("seed %d: child invalid: %v\n%s", seed, err, canonJSON(t, child))
				}
			}
		})
	}
}

func TestCanonicalIdempotent(t *testing.T) {
	for name, b := range allBounds() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 100; seed++ {
				rng := rand.New(rand.NewSource(seed))
				g := RandomGenome(rng, b).Mutate(rng, b)
				once := canonJSON(t, g.Canonical(b))
				twice := canonJSON(t, g.Canonical(b).Canonical(b))
				if !bytes.Equal(once, twice) {
					t.Fatalf("seed %d: canonicalization not idempotent:\n%s\n%s", seed, once, twice)
				}
			}
		})
	}
}

// TestGenomeJSONRoundTrip pins the replayability contract: a genome
// survives an encode/decode cycle byte-identically, and its decoded
// spec hash — the cache key and corpus anchor — is stable across the
// trip.
func TestGenomeJSONRoundTrip(t *testing.T) {
	p := testParams()
	for name, b := range allBounds() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 100; seed++ {
				g := RandomGenome(rand.New(rand.NewSource(seed)), b)
				enc := canonJSON(t, g)
				var back Genome
				if err := json.Unmarshal(enc, &back); err != nil {
					t.Fatalf("seed %d: unmarshal: %v", seed, err)
				}
				if re := canonJSON(t, back); !bytes.Equal(enc, re) {
					t.Fatalf("seed %d: re-encode drifted:\n%s\n%s", seed, enc, re)
				}
				if err := back.Validate(b); err != nil {
					t.Fatalf("seed %d: round-tripped genome invalid: %v", seed, err)
				}
				h1, h2 := g.Decode(p).Hash(), back.Decode(p).Hash()
				if h1 != h2 {
					t.Fatalf("seed %d: spec hash drifted across round trip: %s != %s", seed, h1, h2)
				}
			}
		})
	}
}

func TestDecodeDeterministic(t *testing.T) {
	b := VictimBounds()
	p := testParams()
	for seed := int64(0); seed < 50; seed++ {
		g := RandomGenome(rand.New(rand.NewSource(seed)), b)
		s1, err1 := json.Marshal(g.Decode(p))
		s2, err2 := json.Marshal(g.Decode(p))
		if err1 != nil || err2 != nil {
			t.Fatalf("marshal: %v %v", err1, err2)
		}
		if !bytes.Equal(s1, s2) {
			t.Fatalf("seed %d: decode not deterministic:\n%s\n%s", seed, s1, s2)
		}
	}
}

// TestDecodeIndependentGenomes pins that Decode deep-copies: mutating
// the decoded spec's slices must not write through to the genome.
func TestDecodeIndependentGenomes(t *testing.T) {
	b := VictimBounds()
	rng := rand.New(rand.NewSource(3))
	var g Genome
	// Find a genome with outages so the fault deep-copy is exercised.
	for g.Fault.GE == nil || len(g.Fault.Outages) == 0 || len(g.Cross) == 0 {
		g = RandomGenome(rng, b)
	}
	before := canonJSON(t, g)
	sp := g.Decode(testParams())
	sp.Cross[0].DurS += 1000
	sp.Fault.Outages[0].StartS += 1000
	sp.Fault.GE.LossBad = 0
	if after := canonJSON(t, g); !bytes.Equal(before, after) {
		t.Fatalf("decoded spec aliases genome storage:\n%s\n%s", before, after)
	}
}

func TestCloneIndependent(t *testing.T) {
	b := VictimBounds()
	rng := rand.New(rand.NewSource(3))
	var g Genome
	for g.Fault.GE == nil || len(g.Fault.Outages) == 0 || len(g.Cross) == 0 {
		g = RandomGenome(rng, b)
	}
	before := canonJSON(t, g)
	c := g.Clone()
	c.Cross[0].DurS += 1000
	c.Fault.Outages[0].StartS += 1000
	c.Fault.GE.LossBad = 0
	if after := canonJSON(t, g); !bytes.Equal(before, after) {
		t.Fatalf("clone aliases original storage:\n%s\n%s", before, after)
	}
}
