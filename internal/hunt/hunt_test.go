package hunt

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/scenario"
)

// testConfig is a small but real hunt: two GA generations plus an
// annealing tail, victim mode (fast evaluations).
func testConfig(t *testing.T, runner *scenario.Runner) Config {
	t.Helper()
	obj, err := LookupObjective("harm")
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Objective:  obj,
		Budget:     18,
		Pop:        6,
		RefineFrac: 1.0 / 3, // 12 GA evaluations, 6 annealing steps
		Seed:       42,
		Runner:     runner,
	}
}

func runHunt(t *testing.T, runner *scenario.Runner) []byte {
	t.Helper()
	res, err := Run(context.Background(), testConfig(t, runner))
	if err != nil {
		t.Fatal(err)
	}
	b, err := scenario.CanonicalJSON(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestHuntDeterministicAcrossWorkersAndCache is the replayability
// contract: the full hunt record — every generation, every hash, the
// winner — is byte-identical whether evaluations run on one worker or
// eight, against a cold cache or a warm one. Worker scheduling and
// cache state must never leak into the search trajectory.
func TestHuntDeterministicAcrossWorkersAndCache(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	cache, err := scenario.NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	runs := []struct {
		name   string
		runner *scenario.Runner
	}{
		{"seq-nocache", &scenario.Runner{Workers: 1}},
		{"par-nocache", &scenario.Runner{Workers: 8}},
		{"par-coldcache", &scenario.Runner{Workers: 8, Cache: cache}},
		{"seq-warmcache", &scenario.Runner{Workers: 1, Cache: cache}},
	}
	var want []byte
	for _, r := range runs {
		got := runHunt(t, r.runner)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(want, got) {
			t.Errorf("%s: hunt record diverged:\n%s\nvs baseline:\n%s", r.name, got, want)
		}
	}
}

func TestHuntResultShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	cfg := testConfig(t, &scenario.Runner{Workers: 4})
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != cfg.Budget {
		t.Errorf("evaluations = %d, want %d", res.Evaluations, cfg.Budget)
	}
	if len(res.History) == 0 {
		t.Error("history is empty")
	}
	sawGA, sawAnneal := false, false
	for _, g := range res.History {
		switch g.Mode {
		case "ga":
			sawGA = true
		case "anneal":
			sawAnneal = true
		}
	}
	if !sawGA || !sawAnneal {
		t.Errorf("history modes ga=%v anneal=%v, want both", sawGA, sawAnneal)
	}
	if res.BestScore < 0 || res.BestScore > 2 {
		t.Errorf("best score %v out of range", res.BestScore)
	}
	if res.BestHash != res.BestSpec.Hash() {
		t.Errorf("best hash %s does not match best spec %s", res.BestHash, res.BestSpec.Hash())
	}
	if err := res.Best.Validate(cfg.Objective.DefaultBounds()); err != nil {
		t.Errorf("best genome invalid: %v", err)
	}
	// The recorded best must be reachable from the result alone:
	// decoding the stored genome under the stored params reproduces the
	// winning spec hash.
	if h := res.Best.Decode(res.Params).Hash(); h != res.BestHash {
		t.Errorf("replay hash %s != recorded %s", h, res.BestHash)
	}
}

func TestRandomBaselineDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	cfg := testConfig(t, &scenario.Runner{Workers: 8})
	b1, err := RandomBaseline(context.Background(), cfg, 12)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := testConfig(t, &scenario.Runner{Workers: 1})
	b2, err := RandomBaseline(context.Background(), cfg2, 12)
	if err != nil {
		t.Fatal(err)
	}
	if *b1 != *b2 {
		t.Errorf("baseline diverged across worker counts: %+v vs %+v", b1, b2)
	}
	if b1.N != 12 || b1.BestHash == "" {
		t.Errorf("baseline shape: %+v", b1)
	}
}

func TestHuntModeValidation(t *testing.T) {
	cfg := testConfig(t, &scenario.Runner{Workers: 1})
	cfg.Mode = "hillclimb"
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Error("unknown mode should error")
	}
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("missing objective should error")
	}
}
