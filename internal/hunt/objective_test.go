package hunt

import (
	"math"
	"testing"
)

func TestSanitize(t *testing.T) {
	cases := []struct {
		in, want float64
	}{
		{math.NaN(), 0},
		{math.Inf(1), 0},
		{math.Inf(-1), 0},
		{-0.5, 0},
		{0, 0},
		{0.5, 0.5},
		{1.25, 1.25},
		{3, 2},
	}
	for _, tc := range cases {
		if got := sanitize(tc.in); got != tc.want {
			t.Errorf("sanitize(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestClamp01(t *testing.T) {
	cases := []struct {
		in, want float64
	}{
		{math.NaN(), 0},
		{math.Inf(1), 1},
		{-1, 0},
		{0.25, 0.25},
		{1.5, 1},
	}
	for _, tc := range cases {
		if got := clamp01(tc.in); got != tc.want {
			t.Errorf("clamp01(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestCrossShare(t *testing.T) {
	cases := []struct {
		name string
		o    Outcome
		want float64
	}{
		// Zero fair share is the zero-denominator case: guarded to 0,
		// never NaN or Inf.
		{"zero-fair-share", Outcome{CrossTputBps: 8e6}, 0},
		{"nan-tput", Outcome{FairShareBps: 8e6, CrossTputBps: math.NaN()}, 0},
		{"negative", Outcome{FairShareBps: 8e6, CrossTputBps: -1}, 0},
		{"half-link", Outcome{FairShareBps: 8e6, CrossTputBps: 8e6}, 0.5},
		// Above nominal (oscillation headroom): deliberately unclamped.
		{"above-nominal", Outcome{FairShareBps: 8e6, CrossTputBps: 24e6}, 1.5},
	}
	for _, tc := range cases {
		got := crossShare(&tc.o)
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s: crossShare = %v, want finite", tc.name, got)
		}
		if got != tc.want {
			t.Errorf("%s: crossShare = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestObjectivesFiniteOnDegenerateOutcomes feeds every objective the
// outcomes a broken evaluation could produce — NaN metrics, zero
// denominators, empty phases — and requires a finite, non-negative
// score after sanitize. This is the guard that keeps one degenerate
// simulation from poisoning a whole hunt's selection.
func TestObjectivesFiniteOnDegenerateOutcomes(t *testing.T) {
	nan := math.NaN()
	degenerates := []*Outcome{
		{},
		{Harm: nan, Jain: nan, Util: nan, MainTputBps: nan, CrossTputBps: nan, FairShareBps: nan},
		{Harm: math.Inf(1), Jain: math.Inf(-1), FairShareBps: 8e6, CrossTputBps: math.Inf(1)},
		{Decided: 0, Misclassified: 0},
		{Decided: 2, Misclassified: 1, Phases: []PhaseOutcome{
			{Decided: true, TruthElastic: true, MeanEta: nan},
			{Decided: true, MeanEta: nan},
		}},
	}
	for _, obj := range Objectives() {
		for i, o := range degenerates {
			for _, clean := range []*Outcome{nil, o, {}} {
				if obj.Twin && clean == nil {
					// Twin objectives score 0 without a twin; covered below.
					continue
				}
				got := sanitize(obj.Score(o, clean))
				if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 || got > 2 {
					t.Errorf("%s: degenerate outcome %d: score = %v, want in [0, 2]", obj.Name, i, got)
				}
			}
		}
	}
}

func TestUnfairScoresDeadLinkZero(t *testing.T) {
	obj, err := LookupObjective("unfair")
	if err != nil {
		t.Fatal(err)
	}
	// A blackout that kills both flows hits Jain's zero-denominator
	// guard (index 0); the objective must score it 0, not crown it.
	dead := &Outcome{MainTputBps: 0, CrossTputBps: 0, Jain: 0, FairShareBps: 8e6}
	if got := obj.Score(dead, nil); got != 0 {
		t.Errorf("dead link scored %v, want 0", got)
	}
	// Total asymmetry with a live aggressor scores high.
	skew := &Outcome{MainTputBps: 0, CrossTputBps: 14e6, Jain: 0.5, FairShareBps: 8e6}
	if got := obj.Score(skew, nil); got <= 1 {
		t.Errorf("starved victim + thriving cross scored %v, want > 1", got)
	}
}

func TestFlipScoreGuards(t *testing.T) {
	obj, err := LookupObjective("flip")
	if err != nil {
		t.Fatal(err)
	}
	phases := []PhaseOutcome{{Decided: true, ProbeElastic: true, MeanEta: 0.8}}
	faulted := &Outcome{Phases: phases}
	if got := obj.Score(faulted, nil); got != 0 {
		t.Errorf("nil twin scored %v, want 0", got)
	}
	if got := obj.Score(faulted, &Outcome{}); got != 0 {
		t.Errorf("phase-count mismatch scored %v, want 0", got)
	}
	undecided := &Outcome{Phases: []PhaseOutcome{{Decided: false}}}
	if got := obj.Score(undecided, undecided); got != 0 {
		t.Errorf("no compared phases scored %v, want 0", got)
	}
	flipped := &Outcome{Phases: []PhaseOutcome{{Decided: true, ProbeElastic: false, MeanEta: 0.2}}}
	clean := &Outcome{Phases: []PhaseOutcome{{Decided: true, ProbeElastic: true, MeanEta: 0.8}}}
	if got := obj.Score(flipped, clean); got <= 1 {
		t.Errorf("full flip scored %v, want > 1", got)
	}
}

func TestElasticMissUndecidedScoresZero(t *testing.T) {
	obj, err := LookupObjective("elastic-miss")
	if err != nil {
		t.Fatal(err)
	}
	if got := obj.Score(&Outcome{Decided: 0, Misclassified: 0}, nil); got != 0 {
		t.Errorf("undecided outcome scored %v, want 0", got)
	}
}

func TestLookupObjective(t *testing.T) {
	for _, name := range ObjectiveNames() {
		obj, err := LookupObjective(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if obj.Name != name || obj.Score == nil {
			t.Fatalf("%s: bad objective %+v", name, obj)
		}
		want := VictimBounds()
		if obj.Probe {
			want = ProbeBounds()
		}
		if obj.DefaultBounds() != want {
			t.Errorf("%s: DefaultBounds mismatch", name)
		}
	}
	if _, err := LookupObjective("nope"); err == nil {
		t.Error("unknown objective should error")
	}
}
