package hunt

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
)

// This file exports discovered pathologies as seed inputs for the
// repo's two fuzz targets. A hunt genome describes a hostile
// environment in scenario terms; these translations re-express its
// stress pattern in each fuzzer's op-tape vocabulary — outages become
// timeout ops and cancellations, burst loss becomes loss-op runs,
// oscillation modulates the time stretch — so the coverage the search
// paid for keeps working from inside `go test`'s seed corpus.

// FuzzSeedCCA renders the genome as a FuzzCCAAck tape: (opcode, a, b)
// byte triples driving every registered CCA through the genome's loss,
// outage, and timing pattern. Pure function of the genome.
func FuzzSeedCCA(g Genome) []byte {
	const steps = 48
	dur := g.Duration()
	if dur <= 0 {
		return nil
	}
	f := g.Fault
	// Per-step loss pressure from the i.i.d. and burst-loss knobs: how
	// many of the tape's steps turn into loss ops.
	lossDuty := f.LossProb
	if f.GE != nil && f.GE.PGoodBad+f.GE.PBadGood > 0 {
		lossDuty += f.GE.LossBad * f.GE.PGoodBad / (f.GE.PGoodBad + f.GE.PBadGood)
	}
	lossEvery := 0
	if lossDuty > 0 {
		lossEvery = int(math.Max(2, math.Min(16, 0.08/lossDuty)))
	}

	out := make([]byte, 0, steps*3)
	for i := 0; i < steps; i++ {
		t := dur * float64(i) / steps
		// Time stretch follows the capacity oscillation when present.
		a := byte(8)
		if f.HasOscillation() {
			x := 2 * math.Pi * (t/f.OscPeriodS + f.OscPhase)
			a = byte(8 + 6*f.OscAmp*(1+math.Sin(x)))
		}
		// RTT byte carries the jitter and reorder-delay pressure.
		b := byte(30 + f.JitterMs + f.ReorderDelayMs/2)

		inOutage := false
		for _, w := range f.Outages {
			if t >= w.StartS && t < w.EndS {
				inOutage = true
				break
			}
		}
		switch {
		case inOutage:
			out = append(out, 2, a, 0) // timeout: the link went dark
		case lossEvery > 0 && i%lossEvery == lossEvery-1:
			out = append(out, 1, a, b) // loss
		default:
			out = append(out, 0, a, b) // ack
		}
	}
	return out
}

// FuzzSeedEngine renders the genome as a FuzzEngineSchedule tape:
// (opcode, arg) byte pairs. Phases become schedule/run interleavings,
// outages become cancellations of pending work, oscillation seasons
// the delays. Pure function of the genome.
func FuzzSeedEngine(g Genome) []byte {
	dur := g.Duration()
	if dur <= 0 {
		return nil
	}
	f := g.Fault
	out := make([]byte, 0, 80)
	for i, ph := range g.Cross {
		// A burst of relative schedules whose delays sample the phase.
		n := 3 + i%3
		for j := 0; j < n; j++ {
			delay := ph.DurS * float64(j+1) / float64(n+1) * 10
			if f.HasOscillation() {
				x := 2 * math.Pi * (float64(j)/float64(n) + f.OscPhase)
				delay *= 1 + f.OscAmp*math.Sin(x)
			}
			out = append(out, 0, byte(math.Max(0, math.Min(255, delay))))
		}
		// Advance through the phase.
		out = append(out, 4, byte(math.Min(255, ph.DurS*20)))
	}
	// Outages cancel pending handles mid-flight.
	for _, w := range f.Outages {
		out = append(out, 2, byte(math.Min(255, w.StartS*10)))
	}
	// Drain the tail: steps, then a packet delivery round.
	out = append(out, 3, 0, 5, 1, 3, 0)
	return out
}

// fuzzSeedFile is the `go test fuzz v1` single-[]byte corpus format.
func fuzzSeedFile(data []byte) []byte {
	return []byte("go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n")
}

// FuzzTargets maps each fuzz target to its corpus directory (relative
// to the repo root) and genome translation.
var FuzzTargets = []struct {
	Target string
	Dir    string
	Render func(Genome) []byte
}{
	{"FuzzCCAAck", "internal/cca/testdata/fuzz/FuzzCCAAck", FuzzSeedCCA},
	{"FuzzEngineSchedule", "internal/sim/testdata/fuzz/FuzzEngineSchedule", FuzzSeedEngine},
}

// WriteFuzzSeeds renders a corpus entry into both fuzz targets' seed
// corpora under repoRoot, named hunt-<entry name>, and returns the
// paths written.
func WriteFuzzSeeds(repoRoot string, e CorpusEntry) ([]string, error) {
	var paths []string
	for _, t := range FuzzTargets {
		data := t.Render(e.Genome)
		if len(data) == 0 {
			continue
		}
		dir := filepath.Join(repoRoot, filepath.FromSlash(t.Dir))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("hunt: fuzz seeds: %w", err)
		}
		path := filepath.Join(dir, "hunt-"+e.Name)
		if err := os.WriteFile(path, fuzzSeedFile(data), 0o644); err != nil {
			return nil, fmt.Errorf("hunt: fuzz seeds: %w", err)
		}
		paths = append(paths, path)
	}
	return paths, nil
}
