package hunt

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/obs"
	"repro/internal/scenario"
)

// WriteArtifacts persists a hunt's worst scenario as two replayable
// files under dir, both named by the spec's content hash:
//
//	<hash>.spec.json    the canonical spec (ccac sweep / replay input)
//	<hash>.trace.jsonl  a golden run log (manifest + sampled events +
//	                    summary) from re-running the spec
//
// The trace is deterministic — same spec, same bytes — so CI can
// byte-diff reruns of a pinned hunt.
func WriteArtifacts(ctx context.Context, dir string, res *Result) (specPath, tracePath string, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", "", fmt.Errorf("hunt: artifacts: %w", err)
	}
	sp := res.BestSpec
	hash := res.BestHash

	b, err := scenario.CanonicalJSON(sp)
	if err != nil {
		return "", "", fmt.Errorf("hunt: artifacts: %w", err)
	}
	specPath = filepath.Join(dir, hash+".spec.json")
	if err := os.WriteFile(specPath, append(b, '\n'), 0o644); err != nil {
		return "", "", fmt.Errorf("hunt: artifacts: %w", err)
	}

	tracePath = filepath.Join(dir, hash+".trace.jsonl")
	if err := writeGoldenTrace(ctx, tracePath, sp, res); err != nil {
		return "", "", err
	}
	return specPath, tracePath, nil
}

// goldenTraceSampling keeps 1-in-N bulk events (control events are
// always kept), matching the repo's other golden traces.
const goldenTraceSampling = 32

func writeGoldenTrace(ctx context.Context, path string, sp scenario.Spec, res *Result) error {
	exp, err := scenario.Lookup(sp.Experiment)
	if err != nil {
		return fmt.Errorf("hunt: golden trace: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("hunt: golden trace: %w", err)
	}
	defer f.Close()
	log, err := obs.NewRunLogWriter(f, obs.Manifest{
		Tool:       "ccac/hunt",
		Seed:       sp.Seed,
		FaultSeed:  sp.FaultSeed,
		RateBps:    sp.RateBps,
		RTTSeconds: sp.RTT().Seconds(),
		Queue:      sp.Queue,
		BufferBDP:  sp.BufferBDP,
		Extra: map[string]string{
			"spec_hash": res.BestHash,
			"objective": res.Objective,
			"artifact":  "hunt-golden",
		},
	})
	if err != nil {
		return fmt.Errorf("hunt: golden trace: %w", err)
	}
	tr := log.Tracer()
	tr.SetSampling(goldenTraceSampling)
	if _, err := exp.Run(ctx, sp, &obs.Scope{Tracer: tr}); err != nil {
		return fmt.Errorf("hunt: golden trace: %w", err)
	}
	if err := log.Close(obs.Summary{
		Metrics: map[string]float64{"best_score": res.BestScore},
	}); err != nil {
		return fmt.Errorf("hunt: golden trace: %w", err)
	}
	return nil
}
