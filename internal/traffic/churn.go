package traffic

import (
	"math/rand"
	"time"

	"repro/internal/sim"
	"repro/internal/transport"
)

// ChurnConfig parameterizes a per-user flow churn process: the user
// runs at most one transfer at a time, and after each completion an
// exponential think time elapses before the next arrival — a closed
// loop whose arrivals and departures are both Poisson-like. A fraction
// of arrivals are long transfers; the rest are heavy-tailed short
// (web-like) flows. Each user owns a private randomness stream, so the
// draw sequence depends only on that user's own completions and the
// whole population is byte-replayable regardless of how users
// interleave on the link.
type ChurnConfig struct {
	// MeanThink is the mean exponential gap between a completion and
	// the next arrival (default 2s). The first arrival is drawn from
	// the same distribution, staggering start-up across the population.
	MeanThink time.Duration
	// LongFrac is the probability an arrival is a long transfer
	// (default 0.05).
	LongFrac float64
	// ShortSizes draws short-flow sizes (default BoundedPareto 6KB–3MB,
	// alpha 1.2); LongSizes draws long-flow sizes (default BoundedPareto
	// 4MB–64MB, alpha 1.5).
	ShortSizes, LongSizes SizeDist
	// NewCC constructs the per-flow controller (required).
	NewCC func() transport.CCA
	// Path/ReturnDelay/UserID as in transport.FlowConfig.
	Path        []*sim.Link
	ReturnDelay time.Duration
	UserID      int
	// BaseFlowID numbers generated flows upward from this ID.
	BaseFlowID int
	// Rand is the user's private randomness stream (required).
	Rand *rand.Rand
}

// Churn drives one user's flow arrival/departure process.
type Churn struct {
	cfg ChurnConfig
	eng *sim.Engine

	// Started and Completed count arrivals and departures;
	// LongStarted counts the long-transfer subset of arrivals.
	Started     int
	Completed   int
	LongStarted int
	// ShortFCTs records completed short-flow completion times in
	// seconds.
	ShortFCTs []float64

	active    *transport.Flow
	doneBytes int64
	stopped   bool
}

// NewChurn starts the process; the first arrival lands after one think
// time.
func NewChurn(eng *sim.Engine, cfg ChurnConfig) *Churn {
	if cfg.MeanThink <= 0 {
		cfg.MeanThink = 2 * time.Second
	}
	if cfg.LongFrac < 0 {
		cfg.LongFrac = 0
	}
	if cfg.ShortSizes == nil {
		cfg.ShortSizes = BoundedPareto{Min: 6 * 1024, Max: 3 << 20, Alpha: 1.2}
	}
	if cfg.LongSizes == nil {
		cfg.LongSizes = BoundedPareto{Min: 4 << 20, Max: 64 << 20, Alpha: 1.5}
	}
	c := &Churn{cfg: cfg, eng: eng}
	c.scheduleNext()
	return c
}

// Stop ceases new arrivals; a running transfer completes naturally.
func (c *Churn) Stop() { c.stopped = true }

// Active reports whether a transfer is currently running.
func (c *Churn) Active() bool { return c.active != nil }

// AckedBytes returns the bytes delivered across all of the user's
// transfers, including the one in progress.
func (c *Churn) AckedBytes() int64 {
	b := c.doneBytes
	if c.active != nil {
		b += c.active.Sender.BytesAcked()
	}
	return b
}

func (c *Churn) scheduleNext() {
	if c.stopped {
		return
	}
	gap := time.Duration(c.cfg.Rand.ExpFloat64() * float64(c.cfg.MeanThink))
	c.eng.Schedule(gap, c.arrive)
}

func (c *Churn) arrive() {
	if c.stopped {
		return
	}
	long := c.cfg.Rand.Float64() < c.cfg.LongFrac
	var size int64
	if long {
		size = c.cfg.LongSizes.Sample(c.cfg.Rand)
		c.LongStarted++
	} else {
		size = c.cfg.ShortSizes.Sample(c.cfg.Rand)
	}
	id := c.cfg.BaseFlowID + c.Started
	c.Started++
	start := c.eng.Now()
	f := transport.NewFlow(c.eng, transport.FlowConfig{
		ID:          id,
		UserID:      c.cfg.UserID,
		Path:        c.cfg.Path,
		ReturnDelay: c.cfg.ReturnDelay,
		CC:          c.cfg.NewCC(),
		// Churn totals are read through BytesAcked only; with thousands
		// of concurrent users the per-ack Delivered series would
		// dominate the heap.
		NoDeliverySeries: true,
	})
	f.Sender.OnComplete = func(now time.Duration) {
		c.Completed++
		c.doneBytes += f.Sender.BytesAcked()
		c.active = nil
		if !long {
			c.ShortFCTs = append(c.ShortFCTs, (now - start).Seconds())
		}
		c.scheduleNext()
	}
	c.active = f
	f.Sender.Supply(size)
}
