package traffic

import (
	"fmt"
	"math"
	"time"
)

// Phase is one step of a declarative cross-traffic schedule: a named
// workload kind active for a duration. Schedules are the
// JSON-serializable form the scenario specs (and the hunt genomes)
// carry; internal/core turns each phase into the matching generator at
// its start offset.
//
// Kinds are either a registered CCA name ("reno", "cubic", "bbr",
// "newreno", "vegas", "copa", "aimd" — a persistently backlogged flow
// under that controller), or one of the application workloads: "video"
// (ABR stream), "short" (Poisson short flows), "cbr" (constant bit
// rate UDP), "idle" (no cross traffic).
type Phase struct {
	Kind string  `json:"kind"`
	DurS float64 `json:"dur_s"`
}

// Duration converts DurS.
func (p Phase) Duration() time.Duration {
	return time.Duration(p.DurS * float64(time.Second))
}

// phaseKinds enumerates the valid schedule kinds. The CCA names must
// stay a subset of cca.Names(); core validates the actual constructor
// at decode time, this set only gates schedule structure.
var phaseKinds = map[string]bool{
	"reno": true, "newreno": true, "cubic": true, "bbr": true,
	"vegas": true, "copa": true, "aimd": true,
	"video": true, "short": true, "cbr": true, "idle": true,
}

// PhaseKinds returns the valid kinds, elastic first, in a fixed order
// (for genome encoding: the order is part of the deterministic
// decode, so it must never be rearranged, only appended to).
func PhaseKinds() []string {
	return []string{
		"reno", "newreno", "cubic", "bbr", "vegas", "copa", "aimd",
		"video", "short", "cbr", "idle",
	}
}

// ElasticKind reports the ground-truth elasticity of a phase kind: a
// persistently backlogged CCA-driven flow reacts to the probe's pulses
// (elastic); application-limited video, open-loop short flows, CBR,
// and idle do not. This is the oracle the elasticity-misclassification
// objective scores the Nimbus estimator against.
func ElasticKind(kind string) bool {
	switch kind {
	case "reno", "newreno", "cubic", "bbr", "vegas", "copa", "aimd":
		return true
	default:
		return false
	}
}

// ValidateSchedule checks schedule structure: at least one phase, every
// kind known, every duration positive and finite.
func ValidateSchedule(ps []Phase) error {
	if len(ps) == 0 {
		return fmt.Errorf("traffic: empty schedule")
	}
	for i, p := range ps {
		if !phaseKinds[p.Kind] {
			return fmt.Errorf("traffic: schedule phase %d: unknown kind %q", i, p.Kind)
		}
		if !(p.DurS > 0) || math.IsInf(p.DurS, 0) {
			return fmt.Errorf("traffic: schedule phase %d (%s): non-positive duration %v", i, p.Kind, p.DurS)
		}
	}
	return nil
}

// ScheduleDuration sums the schedule's phase durations.
func ScheduleDuration(ps []Phase) time.Duration {
	var total time.Duration
	for _, p := range ps {
		total += p.Duration()
	}
	return total
}
