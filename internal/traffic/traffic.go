// Package traffic provides the workload generators behind the paper's
// experiments: persistently backlogged bulk flows (the contention
// prerequisite), ABR video streams (application-limited, the dominant
// byte source on today's Internet per §2.2), Poisson arrivals of
// heavy-tailed short flows (web traffic), constant-bit-rate UDP, and
// on-off sources.
package traffic

import (
	"math"
	"math/rand"
	"time"

	"repro/internal/sim"
	"repro/internal/transport"
)

// Bulk wraps a persistently backlogged flow.
type Bulk struct {
	Flow *transport.Flow
}

// NewBulk creates a backlogged flow from the config (Backlogged is
// forced on).
func NewBulk(eng *sim.Engine, cfg transport.FlowConfig) *Bulk {
	cfg.Backlogged = true
	return &Bulk{Flow: transport.NewFlow(eng, cfg)}
}

// SizeDist draws flow sizes in bytes.
type SizeDist interface {
	Sample(rng *rand.Rand) int64
}

// BoundedPareto is a heavy-tailed size distribution truncated to
// [Min, Max] bytes with tail index Alpha, the standard model for web
// object sizes.
type BoundedPareto struct {
	Min, Max int64
	Alpha    float64
}

// Sample implements SizeDist via inverse-CDF sampling.
func (b BoundedPareto) Sample(rng *rand.Rand) int64 {
	lo := float64(b.Min)
	hi := float64(b.Max)
	a := b.Alpha
	if a <= 0 {
		a = 1.2
	}
	u := rng.Float64()
	// Inverse CDF of the bounded Pareto.
	x := math.Pow(-(u*math.Pow(hi, a)-u*math.Pow(lo, a)-math.Pow(hi, a))/(math.Pow(lo*hi, a)), -1/a)
	if x < lo {
		x = lo
	}
	if x > hi {
		x = hi
	}
	return int64(x)
}

// FixedSize always returns the same size.
type FixedSize int64

// Sample implements SizeDist.
func (f FixedSize) Sample(*rand.Rand) int64 { return int64(f) }

// ShortFlowsConfig parameterizes a Poisson short-flow generator.
type ShortFlowsConfig struct {
	// ArrivalRate is the mean flow arrival rate per second.
	ArrivalRate float64
	// Sizes draws per-flow sizes (default: BoundedPareto 6KB–3MB,
	// alpha 1.2 — mostly a handful of packets, occasionally large,
	// matching the "most flows are short" observation).
	Sizes SizeDist
	// Path/ReturnDelay/UserID as in transport.FlowConfig.
	Path        []*sim.Link
	ReturnDelay time.Duration
	UserID      int
	// NewCC constructs the per-flow controller (default Reno via the
	// caller; required).
	NewCC func() transport.CCA
	// BaseFlowID numbers generated flows upward from this ID.
	BaseFlowID int
	// Rand is the randomness source (required for determinism).
	Rand *rand.Rand
	// OpenLoop makes the flows one-shot (no retransmission): the
	// aggregate's offered load is exogenous, as on an overloaded
	// peering link carrying fire-and-forget web bursts.
	OpenLoop bool
}

// ShortFlows generates short transport flows with Poisson arrivals.
type ShortFlows struct {
	cfg     ShortFlowsConfig
	eng     *sim.Engine
	nextID  int
	stopped bool

	// Started and Completed count generated and finished flows.
	Started   int
	Completed int
	// TotalBytes counts supplied bytes across flows.
	TotalBytes int64
	// FCTs records per-flow completion times in seconds.
	FCTs []float64
	// Active tracks currently running flows.
	active map[int]*transport.Flow
}

// NewShortFlows starts the generator immediately.
func NewShortFlows(eng *sim.Engine, cfg ShortFlowsConfig) *ShortFlows {
	if cfg.Sizes == nil {
		cfg.Sizes = BoundedPareto{Min: 6 * 1024, Max: 3 << 20, Alpha: 1.2}
	}
	if cfg.ArrivalRate <= 0 {
		cfg.ArrivalRate = 1
	}
	g := &ShortFlows{cfg: cfg, eng: eng, nextID: cfg.BaseFlowID, active: make(map[int]*transport.Flow)}
	g.scheduleNext()
	return g
}

// Stop ceases new arrivals (running flows complete naturally).
func (g *ShortFlows) Stop() { g.stopped = true }

func (g *ShortFlows) scheduleNext() {
	if g.stopped {
		return
	}
	// Exponential inter-arrival.
	gap := time.Duration(g.cfg.Rand.ExpFloat64() / g.cfg.ArrivalRate * float64(time.Second))
	g.eng.Schedule(gap, g.arrive)
}

func (g *ShortFlows) arrive() {
	if g.stopped {
		return
	}
	id := g.nextID
	g.nextID++
	size := g.cfg.Sizes.Sample(g.cfg.Rand)
	start := g.eng.Now()
	f := transport.NewFlow(g.eng, transport.FlowConfig{
		ID:          id,
		UserID:      g.cfg.UserID,
		Path:        g.cfg.Path,
		ReturnDelay: g.cfg.ReturnDelay,
		CC:          g.cfg.NewCC(),
		OpenLoop:    g.cfg.OpenLoop,
	})
	f.Sender.OnComplete = func(now time.Duration) {
		g.Completed++
		g.FCTs = append(g.FCTs, (now - start).Seconds())
		delete(g.active, id)
	}
	g.active[id] = f
	g.Started++
	g.TotalBytes += size
	f.Sender.Supply(size)
	g.scheduleNext()
}

// ActiveFlows returns the number of flows still transferring.
func (g *ShortFlows) ActiveFlows() int { return len(g.active) }

// OnOffConfig parameterizes an on-off bulk source: backlogged for On,
// silent for Off, repeating.
type OnOffConfig struct {
	On, Off time.Duration
}

// OnOff drives a flow between backlogged and idle states, a simple
// model of bursty application traffic (§5.2's jitter discussion).
type OnOff struct {
	Flow *transport.Flow
	cfg  OnOffConfig
	eng  *sim.Engine
	on   bool
	stop bool
}

// NewOnOff creates the flow and starts in the On state.
func NewOnOff(eng *sim.Engine, fcfg transport.FlowConfig, cfg OnOffConfig) *OnOff {
	if cfg.On <= 0 {
		cfg.On = time.Second
	}
	if cfg.Off <= 0 {
		cfg.Off = time.Second
	}
	fcfg.Backlogged = false
	o := &OnOff{Flow: transport.NewFlow(eng, fcfg), cfg: cfg, eng: eng}
	o.turnOn()
	return o
}

// Stop freezes the source in its current state.
func (o *OnOff) Stop() { o.stop = true }

func (o *OnOff) turnOn() {
	if o.stop {
		return
	}
	o.on = true
	o.Flow.Sender.SetBacklogged(true)
	o.eng.Schedule(o.cfg.On, o.turnOff)
}

func (o *OnOff) turnOff() {
	if o.stop {
		return
	}
	o.on = false
	o.Flow.Sender.SetBacklogged(false)
	o.eng.Schedule(o.cfg.Off, o.turnOn)
}
