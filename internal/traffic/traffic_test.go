package traffic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/cca"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/transport"
)

func testLink(rate float64, owd time.Duration) (*sim.Engine, *sim.Link) {
	eng := &sim.Engine{}
	return eng, sim.NewLink(eng, "l", rate, owd, qdisc.NewDropTailBDP(rate, 2*owd, 1))
}

func flowCfg(id int, link *sim.Link, owd time.Duration, cc transport.CCA) transport.FlowConfig {
	return transport.FlowConfig{
		ID: id, UserID: 1, Path: []*sim.Link{link}, ReturnDelay: owd, CC: cc,
	}
}

func TestBoundedParetoRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := BoundedPareto{Min: 1000, Max: 1e6, Alpha: 1.2}
		for i := 0; i < 100; i++ {
			s := d.Sample(rng)
			if s < 1000 || s > 1e6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBoundedParetoIsHeavyTailed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := BoundedPareto{Min: 6 * 1024, Max: 3 << 20, Alpha: 1.2}
	var sizes []float64
	for i := 0; i < 5000; i++ {
		sizes = append(sizes, float64(d.Sample(rng)))
	}
	// Median far below mean: heavy tail.
	var sum float64
	for _, s := range sizes {
		sum += s
	}
	mean := sum / float64(len(sizes))
	// Count below mean: should be a large majority.
	below := 0
	for _, s := range sizes {
		if s < mean {
			below++
		}
	}
	if frac := float64(below) / float64(len(sizes)); frac < 0.6 {
		t.Errorf("fraction below mean = %.2f, want heavy tail", frac)
	}
}

func TestFixedSize(t *testing.T) {
	if FixedSize(500).Sample(nil) != 500 {
		t.Error("FixedSize should return its value")
	}
}

func TestShortFlowsPoissonArrivals(t *testing.T) {
	eng, link := testLink(1e9, time.Millisecond) // fat link: no queueing
	rng := rand.New(rand.NewSource(2))
	g := NewShortFlows(eng, ShortFlowsConfig{
		ArrivalRate: 20,
		Sizes:       FixedSize(15000),
		Path:        []*sim.Link{link},
		ReturnDelay: time.Millisecond,
		NewCC:       func() transport.CCA { return cca.NewRenoCC() },
		BaseFlowID:  100,
		Rand:        rng,
	})
	eng.Run(10 * time.Second)
	// Poisson(20/s) for 10s: ~200 arrivals; 3-sigma ~ +-42.
	if g.Started < 140 || g.Started > 260 {
		t.Errorf("arrivals = %d, want ~200", g.Started)
	}
	// On a fat link every flow completes quickly.
	if g.Completed < g.Started-5 {
		t.Errorf("completed %d of %d", g.Completed, g.Started)
	}
	if len(g.FCTs) != g.Completed {
		t.Errorf("FCTs = %d, completed = %d", len(g.FCTs), g.Completed)
	}
	for _, fct := range g.FCTs {
		if fct <= 0 || fct > 1 {
			t.Errorf("implausible FCT %v on a fat link", fct)
		}
	}
}

func TestShortFlowsStop(t *testing.T) {
	eng, link := testLink(1e9, time.Millisecond)
	rng := rand.New(rand.NewSource(3))
	g := NewShortFlows(eng, ShortFlowsConfig{
		ArrivalRate: 50,
		Sizes:       FixedSize(3000),
		Path:        []*sim.Link{link},
		ReturnDelay: time.Millisecond,
		NewCC:       func() transport.CCA { return cca.NewRenoCC() },
		Rand:        rng,
	})
	eng.Run(2 * time.Second)
	g.Stop()
	started := g.Started
	eng.Run(4 * time.Second)
	if g.Started != started {
		t.Errorf("arrivals continued after Stop: %d -> %d", started, g.Started)
	}
	if g.ActiveFlows() != 0 {
		t.Errorf("flows still active: %d", g.ActiveFlows())
	}
}

func TestVideoIsAppLimited(t *testing.T) {
	eng, link := testLink(100e6, 10*time.Millisecond)
	v := NewVideo(eng, flowCfg(1, link, 10*time.Millisecond, cca.NewCubicCC()), VideoConfig{})
	eng.Run(60 * time.Second)
	snap := v.Flow.Sender.Snapshot()
	// The stream is bounded by its ladder: well under link rate, and
	// app-limited a large fraction of the time.
	tput := v.Flow.Throughput(10*time.Second, 60*time.Second)
	if tput > 12e6 {
		t.Errorf("video throughput = %.1f Mbit/s, should be ladder-bounded", tput/1e6)
	}
	if snap.AppLimitedFraction() < 0.3 {
		t.Errorf("app-limited fraction = %.2f, want substantial", snap.AppLimitedFraction())
	}
	if v.ChunksFetched < 20 {
		t.Errorf("chunks = %d", v.ChunksFetched)
	}
}

func TestVideoClimbsLadderOnFastLink(t *testing.T) {
	eng, link := testLink(100e6, 10*time.Millisecond)
	v := NewVideo(eng, flowCfg(1, link, 10*time.Millisecond, cca.NewCubicCC()), VideoConfig{})
	eng.Run(60 * time.Second)
	if v.Bitrate() < 6e6 {
		t.Errorf("bitrate = %.1f Mbit/s, should reach the top rungs on a fast link", v.Bitrate()/1e6)
	}
	if v.Rebuffers > 1 {
		t.Errorf("rebuffers = %d on an uncontended fast link", v.Rebuffers)
	}
}

func TestVideoDowngradesOnSlowLink(t *testing.T) {
	// 3 Mbit/s link: the stream must settle below 3 Mbit/s rungs.
	eng, link := testLink(3e6, 20*time.Millisecond)
	v := NewVideo(eng, flowCfg(1, link, 20*time.Millisecond, cca.NewCubicCC()), VideoConfig{})
	eng.Run(90 * time.Second)
	if v.Bitrate() > 2.6e6 {
		t.Errorf("bitrate = %.1f Mbit/s on a 3 Mbit/s link", v.Bitrate()/1e6)
	}
	if v.ChunksFetched == 0 {
		t.Error("no chunks fetched")
	}
}

func TestVideoBufferBounded(t *testing.T) {
	eng, link := testLink(50e6, 10*time.Millisecond)
	cfg := VideoConfig{BufferLow: 5 * time.Second, BufferHigh: 15 * time.Second}
	v := NewVideo(eng, flowCfg(1, link, 10*time.Millisecond, cca.NewCubicCC()), cfg)
	eng.Run(120 * time.Second)
	for _, s := range v.BufferSeries.Samples() {
		if s.Value > 18 { // high watermark + one chunk of slack
			t.Fatalf("buffer exceeded bound: %vs", s.Value)
		}
	}
	if v.Buffer() <= 0 {
		t.Error("buffer should be positive at steady state")
	}
}

func TestVideoStopCeasesTraffic(t *testing.T) {
	eng, link := testLink(50e6, 10*time.Millisecond)
	v := NewVideo(eng, flowCfg(1, link, 10*time.Millisecond, cca.NewCubicCC()), VideoConfig{})
	eng.Run(10 * time.Second)
	v.Stop()
	sent := v.Flow.Sender.BytesSent()
	eng.Run(20 * time.Second)
	// In-flight chunk may finish but no new chunks should start.
	if v.Flow.Sender.BytesSent() > sent+8<<20 {
		t.Errorf("traffic continued after Stop: %d -> %d", sent, v.Flow.Sender.BytesSent())
	}
}

func TestOnOffAlternates(t *testing.T) {
	eng, link := testLink(10e6, 5*time.Millisecond)
	o := NewOnOff(eng, flowCfg(1, link, 5*time.Millisecond, cca.NewRenoCC()),
		OnOffConfig{On: time.Second, Off: time.Second})
	eng.Run(10 * time.Second)
	tput := o.Flow.Throughput(2*time.Second, 10*time.Second)
	// ~50% duty cycle: throughput well below the link rate but
	// nonzero.
	if tput < 2e6 || tput > 8e6 {
		t.Errorf("on-off throughput = %.1f Mbit/s, want roughly half of 10", tput/1e6)
	}
	o.Stop()
	acked := o.Flow.Sender.BytesAcked()
	eng.Run(15 * time.Second)
	// After Stop in whatever state, no state flips occur; if stopped
	// during Off, nothing more is sent.
	_ = acked
}

func TestBulkIsBacklogged(t *testing.T) {
	eng, link := testLink(10e6, 5*time.Millisecond)
	b := NewBulk(eng, flowCfg(1, link, 5*time.Millisecond, cca.NewRenoCC()))
	eng.Run(5 * time.Second)
	if !b.Flow.Sender.Backlogged() {
		t.Error("bulk flow must be backlogged")
	}
	if b.Flow.GoodputBps() < 8e6 {
		t.Errorf("bulk goodput = %.1f Mbit/s", b.Flow.GoodputBps()/1e6)
	}
}

func TestShortFlowsDeterministicWithSeed(t *testing.T) {
	run := func() (int, float64) {
		eng, link := testLink(100e6, 5*time.Millisecond)
		rng := rand.New(rand.NewSource(42))
		g := NewShortFlows(eng, ShortFlowsConfig{
			ArrivalRate: 10,
			Path:        []*sim.Link{link},
			ReturnDelay: 5 * time.Millisecond,
			NewCC:       func() transport.CCA { return cca.NewRenoCC() },
			Rand:        rng,
		})
		eng.Run(5 * time.Second)
		var sum float64
		for _, f := range g.FCTs {
			sum += f
		}
		return g.Started, sum
	}
	n1, s1 := run()
	n2, s2 := run()
	if n1 != n2 || math.Abs(s1-s2) > 1e-12 {
		t.Errorf("nondeterministic: (%d, %v) vs (%d, %v)", n1, s1, n2, s2)
	}
}
