package traffic

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cca"
	"repro/internal/qdisc"
	"repro/internal/sim"
	"repro/internal/transport"
)

// churnCell builds one user's churn process on a private little
// network and runs it for the given duration.
func churnCell(t *testing.T, seed int64, dur time.Duration) *Churn {
	t.Helper()
	eng := &sim.Engine{}
	link := sim.NewLink(eng, "l", 10e6, 5*time.Millisecond, qdisc.NewDropTail(64*1500))
	c := NewChurn(eng, ChurnConfig{
		MeanThink:   200 * time.Millisecond,
		LongFrac:    0.1,
		NewCC:       func() transport.CCA { return cca.NewRenoCC() },
		Path:        []*sim.Link{link},
		ReturnDelay: 5 * time.Millisecond,
		UserID:      1,
		BaseFlowID:  100,
		Rand:        rand.New(rand.NewSource(seed)),
	})
	eng.Run(dur)
	return c
}

// TestChurnDeterministic: the same seed must replay the same arrival
// sequence, completions, and completion times exactly.
func TestChurnDeterministic(t *testing.T) {
	a := churnCell(t, 42, 20*time.Second)
	b := churnCell(t, 42, 20*time.Second)
	if a.Started != b.Started || a.Completed != b.Completed || a.LongStarted != b.LongStarted {
		t.Fatalf("counters diverged: %d/%d/%d vs %d/%d/%d",
			a.Started, a.Completed, a.LongStarted, b.Started, b.Completed, b.LongStarted)
	}
	if a.AckedBytes() != b.AckedBytes() {
		t.Errorf("acked bytes diverged: %d vs %d", a.AckedBytes(), b.AckedBytes())
	}
	if len(a.ShortFCTs) != len(b.ShortFCTs) {
		t.Fatalf("FCT count diverged: %d vs %d", len(a.ShortFCTs), len(b.ShortFCTs))
	}
	for i := range a.ShortFCTs {
		if a.ShortFCTs[i] != b.ShortFCTs[i] {
			t.Fatalf("FCT %d diverged: %v vs %v", i, a.ShortFCTs[i], b.ShortFCTs[i])
		}
	}
	c := churnCell(t, 43, 20*time.Second)
	if a.Started == c.Started && a.AckedBytes() == c.AckedBytes() {
		t.Errorf("different seeds produced identical runs (started %d, bytes %d)", a.Started, a.AckedBytes())
	}
}

// TestChurnClosedLoop: at most one transfer in flight, every completed
// short flow has a positive FCT, and progress is real.
func TestChurnClosedLoop(t *testing.T) {
	c := churnCell(t, 7, 20*time.Second)
	if c.Started == 0 {
		t.Fatal("no arrivals in 20s with 200ms think time")
	}
	if got := c.Started - c.Completed; got != 0 && got != 1 {
		t.Errorf("closed loop violated: %d started, %d completed (gap %d, want 0 or 1)",
			c.Started, c.Completed, got)
	}
	if (c.Started-c.Completed == 1) != c.Active() {
		t.Errorf("Active()=%v inconsistent with %d started, %d completed",
			c.Active(), c.Started, c.Completed)
	}
	if len(c.ShortFCTs) > c.Completed {
		t.Errorf("%d short FCTs recorded but only %d completions", len(c.ShortFCTs), c.Completed)
	}
	for i, fct := range c.ShortFCTs {
		if fct <= 0 {
			t.Errorf("FCT %d: %v, want > 0", i, fct)
		}
	}
	if c.AckedBytes() <= 0 {
		t.Error("no bytes delivered")
	}
}

// TestChurnStop: after Stop, no further arrivals occur.
func TestChurnStop(t *testing.T) {
	eng := &sim.Engine{}
	link := sim.NewLink(eng, "l", 10e6, 5*time.Millisecond, qdisc.NewDropTail(64*1500))
	c := NewChurn(eng, ChurnConfig{
		MeanThink:   100 * time.Millisecond,
		NewCC:       func() transport.CCA { return cca.NewRenoCC() },
		Path:        []*sim.Link{link},
		ReturnDelay: 5 * time.Millisecond,
		UserID:      1,
		Rand:        rand.New(rand.NewSource(1)),
	})
	eng.Schedule(2*time.Second, c.Stop)
	eng.Run(10 * time.Second)
	started := c.Started
	if started == 0 {
		t.Fatal("no arrivals before Stop")
	}
	if c.Active() {
		t.Error("transfer still active 8s after Stop with a 10 Mbit/s link")
	}
	if c.Started != c.Completed {
		t.Errorf("%d started but %d completed after quiescence", c.Started, c.Completed)
	}
}
