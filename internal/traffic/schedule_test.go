package traffic

import (
	"math"
	"testing"
	"time"
)

func TestValidateSchedule(t *testing.T) {
	cases := []struct {
		name    string
		ps      []Phase
		wantErr bool
	}{
		{"valid single", []Phase{{Kind: "reno", DurS: 10}}, false},
		{"valid multi", []Phase{{Kind: "bbr", DurS: 5}, {Kind: "idle", DurS: 0.5}, {Kind: "cbr", DurS: 1}}, false},
		{"empty", nil, true},
		{"unknown kind", []Phase{{Kind: "quic", DurS: 10}}, true},
		{"empty kind", []Phase{{Kind: "", DurS: 10}}, true},
		{"zero duration", []Phase{{Kind: "reno", DurS: 0}}, true},
		{"negative duration", []Phase{{Kind: "reno", DurS: -1}}, true},
		{"NaN duration", []Phase{{Kind: "reno", DurS: math.NaN()}}, true},
		{"Inf duration", []Phase{{Kind: "reno", DurS: math.Inf(1)}}, true},
		{"bad phase after good", []Phase{{Kind: "reno", DurS: 10}, {Kind: "reno", DurS: 0}}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateSchedule(tc.ps)
			if (err != nil) != tc.wantErr {
				t.Errorf("ValidateSchedule(%v) err = %v, wantErr %v", tc.ps, err, tc.wantErr)
			}
		})
	}
}

func TestScheduleDuration(t *testing.T) {
	if got := ScheduleDuration(nil); got != 0 {
		t.Errorf("empty schedule duration %v, want 0", got)
	}
	ps := []Phase{{Kind: "reno", DurS: 1.5}, {Kind: "idle", DurS: 0.25}, {Kind: "bbr", DurS: 3}}
	if got, want := ScheduleDuration(ps), 4750*time.Millisecond; got != want {
		t.Errorf("schedule duration %v, want %v", got, want)
	}
	// Sub-second phases must not truncate: a 100ms phase is 100ms, not 0.
	if got, want := (Phase{Kind: "idle", DurS: 0.1}).Duration(), 100*time.Millisecond; got != want {
		t.Errorf("0.1s phase duration %v, want %v", got, want)
	}
}

// TestPhaseKinds pins the genome-encoding contract: every listed kind
// validates, the list covers the full valid set, and the elastic kinds
// form a contiguous prefix in the fixed order.
func TestPhaseKinds(t *testing.T) {
	kinds := PhaseKinds()
	if len(kinds) != len(phaseKinds) {
		t.Fatalf("PhaseKinds lists %d kinds, validator knows %d", len(kinds), len(phaseKinds))
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		if seen[k] {
			t.Errorf("duplicate kind %q", k)
		}
		seen[k] = true
		if err := ValidateSchedule([]Phase{{Kind: k, DurS: 1}}); err != nil {
			t.Errorf("listed kind %q fails validation: %v", k, err)
		}
	}
	// Elastic-first order: once the first inelastic kind appears, no
	// elastic kind may follow (genome decode depends on the split).
	firstInelastic := -1
	for i, k := range kinds {
		if !ElasticKind(k) && firstInelastic < 0 {
			firstInelastic = i
		}
		if ElasticKind(k) && firstInelastic >= 0 {
			t.Errorf("elastic kind %q at %d after inelastic kind at %d", k, i, firstInelastic)
		}
	}
	if firstInelastic < 0 {
		t.Error("no inelastic kinds listed")
	}
}
