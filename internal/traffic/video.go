package traffic

import (
	"time"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/transport"
)

// VideoConfig parameterizes an adaptive-bitrate video stream. The model
// follows the structure of deployed players: content is divided into
// fixed-duration chunks encoded at a ladder of bitrates; the player
// keeps a playback buffer between low and high watermarks, requesting
// the next chunk when below the high mark and idling otherwise. Bitrate
// selection combines a throughput rule (EWMA of recent chunk download
// rates, with a safety factor) and buffer-based overrides (BBA-style).
//
// The essential property for the paper's argument is that the stream's
// long-run offered load is bounded by its top bitrate — it is
// application-limited, so it does not contend like a backlogged CCA
// flow.
type VideoConfig struct {
	// Ladder lists available bitrates in bits/s, ascending (default:
	// 1, 2.5, 4, 6, 8 Mbit/s — a typical HD ladder).
	Ladder []float64
	// ChunkDuration is seconds of content per chunk (default 2s).
	ChunkDuration time.Duration
	// BufferLow and BufferHigh are the playback-buffer watermarks
	// (default 5s / 15s).
	BufferLow, BufferHigh time.Duration
	// SafetyFactor scales the throughput estimate when picking a
	// bitrate (default 0.8).
	SafetyFactor float64
}

func (c VideoConfig) norm() VideoConfig {
	if len(c.Ladder) == 0 {
		c.Ladder = []float64{1e6, 2.5e6, 4e6, 6e6, 8e6}
	}
	if c.ChunkDuration <= 0 {
		c.ChunkDuration = 2 * time.Second
	}
	if c.BufferLow <= 0 {
		c.BufferLow = 5 * time.Second
	}
	if c.BufferHigh <= c.BufferLow {
		c.BufferHigh = c.BufferLow + 10*time.Second
	}
	if c.SafetyFactor <= 0 {
		c.SafetyFactor = 0.8
	}
	return c
}

// Video is an ABR video stream over one transport flow.
type Video struct {
	Flow *transport.Flow
	cfg  VideoConfig
	eng  *sim.Engine

	bitrateIdx  int
	buffer      time.Duration // seconds of content buffered
	lastUpdate  time.Duration
	playing     bool
	downloading bool
	chunkStart  time.Duration
	chunkBytes  int64
	ackedAtReq  int64
	stopped     bool

	tputEWMA *stats.EWMA

	// ChunksFetched counts completed chunk downloads.
	ChunksFetched int
	// Rebuffers counts playback stalls.
	Rebuffers int
	// RebufferTime accumulates stall duration.
	RebufferTime time.Duration
	// BitrateSeries records the selected bitrate at each chunk request.
	BitrateSeries stats.Series
	// BufferSeries records the playback buffer (seconds) at each chunk
	// completion.
	BufferSeries stats.Series
}

// NewVideo creates the stream and requests its first chunk.
func NewVideo(eng *sim.Engine, fcfg transport.FlowConfig, cfg VideoConfig) *Video {
	fcfg.Backlogged = false
	v := &Video{
		Flow:     transport.NewFlow(eng, fcfg),
		cfg:      cfg.norm(),
		eng:      eng,
		tputEWMA: stats.NewEWMA(0.4),
	}
	v.lastUpdate = eng.Now()
	v.requestChunk()
	return v
}

// Stop ends the stream.
func (v *Video) Stop() { v.stopped = true }

// Bitrate returns the currently selected bitrate in bits/s.
func (v *Video) Bitrate() float64 { return v.cfg.Ladder[v.bitrateIdx] }

// Buffer returns the current playback buffer level.
func (v *Video) Buffer() time.Duration {
	v.advancePlayback()
	return v.buffer
}

// advancePlayback drains the buffer for elapsed playback time and
// tracks rebuffering.
func (v *Video) advancePlayback() {
	now := v.eng.Now()
	el := now - v.lastUpdate
	v.lastUpdate = now
	if el <= 0 {
		return
	}
	if !v.playing {
		// Startup / rebuffering: waiting for the buffer to refill.
		v.RebufferTime += el
		return
	}
	if el >= v.buffer {
		// Stall.
		v.RebufferTime += el - v.buffer
		v.buffer = 0
		v.playing = false
		v.Rebuffers++
		return
	}
	v.buffer -= el
}

func (v *Video) requestChunk() {
	if v.stopped {
		return
	}
	v.advancePlayback()
	if v.buffer >= v.cfg.BufferHigh {
		// Full: idle until one chunk of content has played out.
		v.eng.Schedule(v.cfg.ChunkDuration, v.requestChunk)
		return
	}
	v.pickBitrate()
	now := v.eng.Now()
	v.chunkBytes = int64(v.Bitrate() * v.cfg.ChunkDuration.Seconds() / 8)
	v.chunkStart = now
	v.ackedAtReq = v.Flow.Sender.BytesAcked()
	v.downloading = true
	v.BitrateSeries.Append(now, v.Bitrate())
	v.Flow.Sender.OnComplete = nil // reset any prior hook
	v.Flow.Sender.Supply(v.chunkBytes)
	v.pollChunk()
}

// pollChunk watches for chunk completion. Polling at a small interval
// keeps the video model independent of transport internals.
func (v *Video) pollChunk() {
	if v.stopped {
		return
	}
	if v.Flow.Sender.BytesAcked()-v.ackedAtReq >= v.chunkBytes {
		v.finishChunk()
		return
	}
	v.eng.Schedule(10*time.Millisecond, v.pollChunk)
}

func (v *Video) finishChunk() {
	now := v.eng.Now()
	v.downloading = false
	v.ChunksFetched++
	dl := (now - v.chunkStart).Seconds()
	if dl > 0 {
		v.tputEWMA.Update(float64(v.chunkBytes) * 8 / dl)
	}
	v.advancePlayback()
	v.buffer += v.cfg.ChunkDuration
	v.BufferSeries.Append(now, v.buffer.Seconds())
	if !v.playing && v.buffer >= v.cfg.BufferLow {
		v.playing = true
	}
	v.requestChunk()
}

// pickBitrate selects the next chunk's bitrate.
func (v *Video) pickBitrate() {
	est := v.tputEWMA.Value() * v.cfg.SafetyFactor
	idx := 0
	if v.tputEWMA.Initialized() {
		for i, r := range v.cfg.Ladder {
			if r <= est {
				idx = i
			}
		}
	}
	// Buffer overrides: panic down when low, allow up when high.
	if v.buffer < v.cfg.BufferLow/2 {
		idx = 0
	} else if v.buffer > v.cfg.BufferHigh*3/4 && idx < len(v.cfg.Ladder)-1 {
		idx++
	}
	v.bitrateIdx = idx
}
