// Package repro reproduces "How I Learned to Stop Worrying About CCA
// Contention" (Brown et al., HotNets '23): tooling to measure whether
// congestion-control contention actually determines flows' bandwidth
// allocations.
//
// The implementation lives under internal/ (see DESIGN.md for the full
// inventory):
//
//   - internal/sim, internal/qdisc, internal/transport — a
//     deterministic packet-level network emulator with droptail,
//     shaping, policing, fair-queueing, and per-user isolation
//     disciplines, plus a TCP-like transport.
//   - internal/cca — Reno, NewReno, Cubic, BBR, Copa, Vegas, AIMD, CBR.
//   - internal/nimbus — the Nimbus-style elasticity detector the paper
//     proposes as an active contention sensor (§3.2).
//   - internal/mlab, internal/changepoint — the M-Lab NDT passive
//     analysis pipeline (§3.1 / Figure 2).
//   - internal/probe — the active measurement as a real UDP
//     client/server tool.
//   - internal/core — the experiment harnesses behind every figure and
//     ablation; cmd/ and the benchmarks in this directory are thin
//     wrappers around it.
//
// The benchmarks in bench_test.go regenerate each figure:
//
//	go test -bench=Fig -benchmem
package repro
