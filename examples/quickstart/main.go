// Quickstart: emulate two backlogged flows (Reno vs BBR) sharing a
// 48 Mbit/s access link and print their bandwidth allocations — the
// canonical CCA contention scenario the paper argues is rare in
// practice.
package main

import (
	"fmt"
	"time"

	"repro/internal/cca"
	"repro/internal/core"
	"repro/internal/stats"
)

func main() {
	// A dumbbell topology: one bottleneck link, droptail FIFO queue
	// sized to one bandwidth-delay product.
	d := core.NewDumbbell(core.LinkSpec{
		RateBps:     48e6,
		OneWayDelay: 20 * time.Millisecond,
		Queue:       core.QueueDropTail,
	})

	// Two persistently backlogged flows with different CCAs.
	reno := d.AddBulk(1, 1, cca.NewRenoCC())
	bbr := d.AddBulk(2, 2, cca.NewBBRCC())

	// Run 30 seconds of virtual time.
	d.Run(30 * time.Second)

	// Average throughput after a 10s warmup.
	tReno := reno.Throughput(10*time.Second, 30*time.Second)
	tBBR := bbr.Throughput(10*time.Second, 30*time.Second)

	fmt.Println("two backlogged flows on a 48 Mbit/s, 40ms-RTT droptail link:")
	fmt.Printf("  reno: %s  (loss events: %d)\n", core.FmtBps(tReno), reno.Sender.LossEvents())
	fmt.Printf("  bbr:  %s  (loss events: %d)\n", core.FmtBps(tBBR), bbr.Sender.LossEvents())
	fmt.Printf("  jain fairness index: %.3f\n", stats.JainIndex([]float64{tReno, tBBR}))
	fmt.Println()
	fmt.Println("CCA identity determined this allocation. Re-run with")
	fmt.Println("core.QueueFQ or core.QueueUserIso and it no longer does —")
	fmt.Println("which is the paper's Figure 1 in two lines of code.")
}
