// RCS: the paper's §5.3 asks how we should model the Internet if CCA
// dynamics don't govern allocations. One candidate it cites is
// "Recursive Congestion Shares" (Brown et al., HotNets '20): bandwidth
// at a congested resource divides along the tree of economic
// arrangements, recursively. This example allocates a congested IXP
// port across two ISPs and their customers — no CCA involved.
package main

import (
	"fmt"
	"os"

	"repro/internal/bwe"
	"repro/internal/core"
)

func main() {
	// An IXP port: ISP A pays for twice ISP B's share. A's customers
	// are one video viewer (bounded demand) and one bulk downloader;
	// B hosts a single bulk downloader.
	tree := &bwe.ShareNode{
		Name: "ixp-port",
		Children: []*bwe.ShareNode{
			{
				Name:   "isp-a",
				Weight: 2,
				Children: []*bwe.ShareNode{
					{Name: "a/video", DemandBps: 8e6},
					{Name: "a/bulk", DemandBps: 1e9},
				},
			},
			{
				Name:   "isp-b",
				Weight: 1,
				Children: []*bwe.ShareNode{
					{Name: "b/bulk", DemandBps: 1e9},
				},
			},
		},
	}

	const port = 90e6
	alloc, err := bwe.AllocateShares(tree, port)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("recursive congestion shares over a %s port:\n", core.FmtBps(port))
	for _, name := range bwe.FlattenNames(tree) {
		if v, ok := alloc[name]; ok && v > 0 {
			fmt.Printf("  %-8s %s\n", name, core.FmtBps(v))
		}
	}
	fmt.Println()
	fmt.Println("ISP A's weight-2 contract yields 60 Mbit/s; its video user takes")
	fmt.Println("only its 8 Mbit/s demand and the bulk user the rest. The same")
	fmt.Println("allocation emerges from the contract tree every time — no CCA")
	fmt.Println("dynamics, which is §5.3's point about modelling the Internet by")
	fmt.Println("economic arrangements rather than flow interaction.")
}
