// Elasticity: use the Nimbus-based probe as a contention sensor
// (§3.2). The probe shares an emulated link first with a backlogged
// Cubic flow (elastic cross traffic — real CCA contention) and then
// with a CBR stream of the same average rate (inelastic). Same
// throughput loss; completely different verdicts — which is exactly
// the information passive measurement cannot provide.
package main

import (
	"fmt"
	"time"

	"repro/internal/cca"
	"repro/internal/core"
	"repro/internal/nimbus"
	"repro/internal/stats"
	"repro/internal/transport"
)

func measure(crossName string, cross transport.CCA) {
	const rate = 48e6
	d := core.NewDumbbell(core.LinkSpec{
		RateBps:     rate,
		OneWayDelay: 50 * time.Millisecond,
		Queue:       core.QueueDropTail,
	})
	probeCC := nimbus.NewCCA(nimbus.Config{
		Mu:        rate,
		PulseFreq: 2, // period > loaded RTT (see DESIGN.md)
	})
	probe := d.AddBulk(1, 1, probeCC)

	f := transport.NewFlow(d.Eng, transport.FlowConfig{
		ID: 2, UserID: 1, Path: d.FlowConfig(0, 0, nil).Path,
		ReturnDelay: d.Spec.OneWayDelay, CC: cross, Backlogged: true,
	})
	f.Start()

	const dur = 40 * time.Second
	d.Run(dur)

	etas := probeCC.Est.Elasticity.Window(10*time.Second, dur)
	eta := stats.Mean(etas)
	verdict := "inelastic (no CCA contention)"
	if eta >= probeCC.Est.Config().EtaThreshold {
		verdict = "ELASTIC (CCA contention detected)"
	}
	fmt.Printf("cross traffic %-6s  probe %-14s cross %-14s eta=%.3f -> %s\n",
		crossName,
		core.FmtBps(probe.Throughput(10*time.Second, dur)),
		core.FmtBps(f.Throughput(10*time.Second, dur)),
		eta, verdict)
}

func main() {
	fmt.Println("Nimbus elasticity probe, mode switching disabled (paper §3.2):")
	measure("cubic", cca.NewCubicCC())
	measure("cbr", cca.NewCBR(0.4*48e6))
}
