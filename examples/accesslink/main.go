// Accesslink: the paper's §2.2 scenario — a realistic access-link
// workload (an ABR video stream, web browsing as Poisson short flows,
// and one software-update bulk flow) on a 100 Mbit/s home link. The
// example shows who is application-limited and whether the video's
// quality of experience depends on the competing bulk flow's CCA.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cca"
	"repro/internal/core"
	"repro/internal/traffic"
	"repro/internal/transport"
)

func run(bulkCC string, queue core.QueueKind) {
	d := core.NewDumbbell(core.LinkSpec{
		RateBps:     100e6,
		OneWayDelay: 15 * time.Millisecond,
		Queue:       queue,
	})
	rng := rand.New(rand.NewSource(42))

	video := traffic.NewVideo(d.Eng, transport.FlowConfig{
		ID: 1, UserID: 1, Path: d.FlowConfig(0, 0, nil).Path,
		ReturnDelay: d.Spec.OneWayDelay, CC: cca.NewCubicCC(),
	}, traffic.VideoConfig{})

	web := traffic.NewShortFlows(d.Eng, traffic.ShortFlowsConfig{
		ArrivalRate: 3,
		Path:        d.FlowConfig(0, 0, nil).Path,
		ReturnDelay: d.Spec.OneWayDelay,
		UserID:      1,
		NewCC:       func() transport.CCA { return cca.NewCubicCC() },
		BaseFlowID:  1000,
		Rand:        rng,
	})

	cc, err := cca.New(bulkCC)
	if err != nil {
		panic(err)
	}
	update := d.AddBulk(2, 1, cc)

	const dur = 60 * time.Second
	d.Run(dur)

	vt := video.Flow.Throughput(10*time.Second, dur)
	snap := video.Flow.Sender.Snapshot()
	fmt.Printf("bulk flow uses %s, %s queue:\n", bulkCC, queue)
	fmt.Printf("  video:  %s achieved, final bitrate %s, rebuffers %d, app-limited %.0f%% of time\n",
		core.FmtBps(vt), core.FmtBps(video.Bitrate()), video.Rebuffers, 100*snap.AppLimitedFraction())
	fmt.Printf("  update: %s\n", core.FmtBps(update.Throughput(10*time.Second, dur)))
	fmt.Printf("  web:    %d flows completed, %d active\n", web.Completed, web.ActiveFlows())
	fmt.Println()
}

func main() {
	fmt.Println("§2.2/§2.3: an access link whose traffic is mostly app-limited.")
	fmt.Println("Against a loss-based bulk flow the video's bounded demand is met;")
	fmt.Println("an aggressive model-based CCA (BBR) can still crush it on a plain")
	fmt.Println("FIFO — and a home router running fq_codel (cheap, deployed flow")
	fmt.Println("isolation) restores it, which is §2.3's answer.")
	fmt.Println()
	run("reno", core.QueueDropTail)
	run("bbr", core.QueueDropTail)
	run("bbr", core.QueueFQCoDel)
}
