// MLab: run the paper's passive-measurement pipeline end to end on a
// small synthetic NDT dataset: generate flows, filter the
// application-, receiver-, and cellular-limited ones, and search the
// remainder for throughput level shifts with change-point detection
// (§3.1 / Figure 2).
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/mlab"
)

func main() {
	res, err := core.RunFig2(core.Fig2Config{
		Generator: mlab.GeneratorConfig{Flows: 2000, Seed: 7},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mlab:", err)
		os.Exit(1)
	}
	res.WriteReport(os.Stdout)

	fmt.Println()
	fmt.Println("Even among candidate flows, a throughput level shift only says the")
	fmt.Println("allocation changed — not why. That ambiguity is the paper's argument")
	fmt.Println("for the active elasticity measurement (see examples/elasticity).")
}
