// Isolation: quantify Figure 1's claim — in-network bandwidth
// management (fair queueing, per-user throttling + isolation) removes
// CCA identity from bandwidth allocation, while FIFO queues let
// aggressive CCAs dominate. This drives the same harness as
// `ccabench -experiment fig1`.
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/core"
)

func main() {
	res, err := core.RunFig1(core.Fig1Config{
		Duration: 40 * time.Second,
		Pairs:    [][2]string{{"reno", "bbr"}, {"reno", "cubic"}, {"vegas", "cubic"}},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res.WriteTable(os.Stdout)

	fmt.Println()
	fifo := res.Row("reno", "bbr", core.QueueDropTail)
	fq := res.Row("reno", "bbr", core.QueueFQ)
	if fifo != nil && fq != nil {
		fmt.Printf("reno vs bbr: FIFO gives bbr %.0f%% of the link; fair queueing gives it %.0f%%.\n",
			100*fifo.Share2, 100*fq.Share2)
		fmt.Println("Under isolation, the CCA no longer determines the allocation —")
		fmt.Println("the operator's scheduler does. (§2.1)")
	}
}
